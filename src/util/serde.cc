#include "util/serde.h"

namespace tcvs {
namespace util {

void Writer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutBytes(const Bytes& b) {
  PutU32(static_cast<uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Writer::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::PutRaw(const Bytes& b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

Result<uint8_t> Reader::GetU8() {
  if (remaining() < 1) return Status::OutOfRange("read past end of buffer");
  return buf_[pos_++];
}

Result<uint32_t> Reader::GetU32() {
  if (remaining() < 4) return Status::OutOfRange("read past end of buffer");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

Result<uint64_t> Reader::GetU64() {
  if (remaining() < 8) return Status::OutOfRange("read past end of buffer");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

Result<Bytes> Reader::GetBytes() {
  TCVS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  return GetRaw(len);
}

Result<std::string> Reader::GetString() {
  TCVS_ASSIGN_OR_RETURN(Bytes b, GetBytes());
  return ToString(b);
}

Result<Bytes> Reader::GetRaw(size_t n) {
  if (remaining() < n) return Status::OutOfRange("read past end of buffer");
  Bytes out(buf_.begin() + pos_, buf_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

}  // namespace util
}  // namespace tcvs
