#include "util/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#include <ucontext.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <unordered_map>

#include "util/metrics.h"
#include "util/mutex.h"

namespace tcvs {
namespace util {

namespace {

// ---------------------------------------------------------------------------
// Sample ring.
//
// The SIGPROF handler owns slot claiming (one relaxed fetch_add) and the raw
// PC writes; everything else — symbolization, aggregation, rendering — runs
// off-signal under g_profiler_mu. A slot's depth is published with release
// order after its PCs are written, so the drain (which stops capture, lets
// in-flight handlers settle, then reads with acquire) sees complete frames.

constexpr int kMaxFrames = 48;
// Fallback frame skip when the interrupted PC can't be matched (see the
// handler): [0] the handler, [1] the kernel signal trampoline
// (__restore_rt). The PC match is the primary trim because sanitizer
// builds interpose extra wrapper frames between the two, and the
// trampoline symbol is not exported by libc for a name-based defense.
constexpr int kHandlerFrames = 2;
constexpr uint32_t kRingSamples = 8192;

struct Sample {
  std::atomic<int32_t> depth{0};
  void* pcs[kMaxFrames];
};

Sample g_ring[kRingSamples];
std::atomic<uint32_t> g_ring_pos{0};
std::atomic<uint64_t> g_ring_dropped{0};
// Gate the handler reads before touching the ring — cleared first on every
// drain so the ring can be read and reset off-signal.
std::atomic<bool> g_capturing{false};

// Extra slack for handler/trampoline/sanitizer-wrapper frames ahead of the
// interrupted PC in the raw backtrace.
constexpr int kWrapperSlack = 8;

void ProfilerSignalHandler(int /*signo*/, siginfo_t* /*info*/,
                           void* ucontext) {
  const int saved_errno = errno;
  if (g_capturing.load(std::memory_order_relaxed)) {
    const uint32_t slot = g_ring_pos.fetch_add(1, std::memory_order_relaxed);
    if (slot < kRingSamples) {
      Sample& s = g_ring[slot];
      void* frames[kMaxFrames + kWrapperSlack];
      // backtrace() is primed off-signal in StartCpuProfiler (the first call
      // may dlopen libgcc, which is not async-signal-safe; subsequent calls
      // only walk the stack).
      const int n = backtrace(frames, kMaxFrames + kWrapperSlack);
      // Trim the handler's own frames: the unwinder reconstructs the
      // interrupted PC exactly when it crosses the signal frame, so the
      // first frame equal to the ucontext PC is where the profiled stack
      // starts. The number of frames above it varies (sanitizer builds
      // interpose handler wrappers), so a fixed skip is only the fallback.
      void* interrupted_pc = nullptr;
#if defined(__x86_64__)
      interrupted_pc = reinterpret_cast<void*>(
          static_cast<ucontext_t*>(ucontext)->uc_mcontext.gregs[REG_RIP]);
#elif defined(__aarch64__)
      interrupted_pc = reinterpret_cast<void*>(
          static_cast<ucontext_t*>(ucontext)->uc_mcontext.pc);
#else
      (void)ucontext;
#endif
      int start = -1;
      if (interrupted_pc != nullptr) {
        for (int i = 0; i < n; ++i) {
          if (frames[i] == interrupted_pc) {
            start = i;
            break;
          }
        }
      }
      if (start < 0) start = n < kHandlerFrames ? n : kHandlerFrames;
      int depth = 0;
      for (int i = start; i < n && depth < kMaxFrames; ++i) {
        s.pcs[depth++] = frames[i];
      }
      s.depth.store(depth, std::memory_order_release);
    } else {
      g_ring_dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}

// ---------------------------------------------------------------------------
// Profiler state (all off-signal, guarded by g_profiler_mu).

Mutex g_profiler_mu;
bool g_profiler_running TCVS_GUARDED_BY(g_profiler_mu) = false;
int g_profiler_hz TCVS_GUARDED_BY(g_profiler_mu) = 0;
uint64_t g_profiler_window_start_us TCVS_GUARDED_BY(g_profiler_mu) = 0;
struct sigaction g_old_sigaction TCVS_GUARDED_BY(g_profiler_mu);

// Serializes blocking ProfileWindow() calls without queueing them.
std::atomic<bool> g_window_active{false};

int ClampInt(int v, int lo, int hi) { return v < lo ? lo : (v > hi ? hi : v); }

std::string Demangle(const char* name) {
  int status = 0;
  char* demangled = abi::__cxa_demangle(name, nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    std::string out(demangled);
    std::free(demangled);
    return out;
  }
  std::free(demangled);
  return name;
}

/// Best-effort frame name: demangled symbol when the PC resolves (the build
/// links with ENABLE_EXPORTS so executables export their globals to dladdr),
/// else `module+0xoff`, else raw hex.
std::string SymbolizePc(void* pc) {
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    return Demangle(info.dli_sname);
  }
  char buf[64];
  if (dladdr(pc, &info) != 0 && info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    std::snprintf(buf, sizeof(buf), "%.32s+0x%zx", base,
                  reinterpret_cast<size_t>(pc) -
                      reinterpret_cast<size_t>(info.dli_fbase));
  } else {
    std::snprintf(buf, sizeof(buf), "0x%zx", reinterpret_cast<size_t>(pc));
  }
  return buf;
}

bool IsProfilerInternalFrame(const std::string& symbol) {
  return symbol.find("ProfilerSignalHandler") != std::string::npos ||
         symbol.find("__restore_rt") != std::string::npos ||
         symbol.find("__kernel_rt_sigreturn") != std::string::npos;
}

/// Reads the settled ring, symbolizes, aggregates into folded stacks, and
/// resets the ring for the next window. Requires capture disabled and
/// in-flight handlers settled.
CpuProfile HarvestRingLocked(int hz) TCVS_REQUIRES(g_profiler_mu) {
  CpuProfile profile;
  profile.hz = hz;
  const uint32_t claimed = g_ring_pos.load(std::memory_order_relaxed);
  const uint32_t used = claimed < kRingSamples ? claimed : kRingSamples;
  profile.dropped = g_ring_dropped.load(std::memory_order_relaxed);

  std::unordered_map<void*, std::string> symbols;
  std::map<std::string, uint64_t> stacks;
  std::string stack;
  for (uint32_t i = 0; i < used; ++i) {
    Sample& s = g_ring[i];
    const int32_t depth = s.depth.load(std::memory_order_acquire);
    if (depth <= 0 || depth > kMaxFrames) continue;  // Torn or empty slot.
    // pcs[] is innermost-first; folded format wants root-first.
    stack.clear();
    for (int32_t f = depth - 1; f >= 0; --f) {
      auto it = symbols.find(s.pcs[f]);
      if (it == symbols.end()) {
        it = symbols.emplace(s.pcs[f], SymbolizePc(s.pcs[f])).first;
      }
      if (IsProfilerInternalFrame(it->second)) continue;
      if (!stack.empty()) stack.push_back(';');
      stack.append(it->second);
    }
    if (stack.empty()) continue;
    ++stacks[stack];
    ++profile.samples;
  }

  profile.folded.assign(stacks.begin(), stacks.end());
  std::stable_sort(profile.folded.begin(), profile.folded.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });

  // Reset for the next window.
  for (uint32_t i = 0; i < used; ++i) {
    g_ring[i].depth.store(0, std::memory_order_relaxed);
  }
  g_ring_pos.store(0, std::memory_order_relaxed);
  g_ring_dropped.store(0, std::memory_order_relaxed);

  static Counter* const samples_total =
      MetricsRegistry::Instance().GetCounter("profile.samples_total");
  static Counter* const dropped_total =
      MetricsRegistry::Instance().GetCounter("profile.dropped_total");
  samples_total->Increment(profile.samples);
  dropped_total->Increment(profile.dropped);
  return profile;
}

/// Stops SIGPROF delivery and waits out in-flight handlers so the ring can
/// be read without racing a mid-write slot.
void QuiesceCaptureLocked() TCVS_REQUIRES(g_profiler_mu) {
  g_capturing.store(false, std::memory_order_relaxed);
  // A handler that passed the g_capturing check before the store may still
  // be writing its slot on another thread; signal handlers finish in
  // microseconds, so a short settle closes the race window.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
}

void ArmTimer(int hz) {
  itimerval timer{};
  const long interval_us = 1000000L / hz;
  timer.it_interval.tv_sec = interval_us / 1000000L;
  timer.it_interval.tv_usec = interval_us % 1000000L;
  timer.it_value = timer.it_interval;
  setitimer(ITIMER_PROF, &timer, nullptr);
}

void DisarmTimer() {
  itimerval zero{};
  setitimer(ITIMER_PROF, &zero, nullptr);
}

void SleepSeconds(int seconds) {
  // nanosleep is not restarted by SA_RESTART, so an always-on profiler's
  // SIGPROF stream would cut sleep_for short; loop on a deadline instead.
  const uint64_t deadline_us =
      MonotonicMicros() + static_cast<uint64_t>(seconds) * 1000000ULL;
  for (;;) {
    const uint64_t now_us = MonotonicMicros();
    if (now_us >= deadline_us) return;
    std::this_thread::sleep_for(std::chrono::microseconds(
        std::min<uint64_t>(deadline_us - now_us, 50000)));
  }
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Contention table: fixed open-addressed array of atomic slots, keyed by
// callsite PC. Lock-free on purpose — the recorders run inside Mutex's own
// slow path (including the metrics registry's and every histogram's
// internal mutexes), so taking any lock here would recurse.

struct ContentionSlot {
  std::atomic<uintptr_t> pc{0};
  std::atomic<uint64_t> waits{0};
  std::atomic<uint64_t> total_us{0};
};

constexpr size_t kContentionSlots = 512;  // Power of two (mask indexing).
constexpr size_t kContentionProbes = 16;
ContentionSlot g_contention[kContentionSlots];
std::atomic<uint64_t> g_contention_dropped{0};

void RecordContentionSite(uintptr_t pc, uint64_t wait_us) {
  size_t idx = (pc * 0x9E3779B97F4A7C15ULL) >> 32;
  for (size_t probe = 0; probe < kContentionProbes; ++probe) {
    ContentionSlot& slot = g_contention[(idx + probe) & (kContentionSlots - 1)];
    uintptr_t cur = slot.pc.load(std::memory_order_acquire);
    if (cur == 0) {
      uintptr_t expected = 0;
      if (slot.pc.compare_exchange_strong(expected, pc,
                                          std::memory_order_acq_rel)) {
        cur = pc;
      } else {
        cur = expected;  // Someone else claimed it — maybe with our PC.
      }
    }
    if (cur != pc) continue;
    slot.waits.fetch_add(1, std::memory_order_relaxed);
    slot.total_us.fetch_add(wait_us, std::memory_order_relaxed);
    return;
  }
  g_contention_dropped.fetch_add(1, std::memory_order_relaxed);
}

/// Named-mutex histogram record: resolve-and-cache `lock.<name>.contention_us`
/// in the mutex's atomic slot, then record. Recursion is bounded: the
/// registry and histogram mutexes inside are anonymous, so a contended
/// acquisition there records into the lock-free table only.
void RecordNamedContention(const char* name, std::atomic<void*>* cache,
                           uint64_t wait_us) {
  void* hist = cache->load(std::memory_order_acquire);
  if (hist == nullptr) {
    LatencyHistogram* resolved = MetricsRegistry::Instance().GetLatency(
        std::string("lock.") + name + ".contention_us");
    void* expected = nullptr;
    if (!cache->compare_exchange_strong(expected, resolved,
                                        std::memory_order_acq_rel)) {
      hist = expected;  // Lost the race; both resolutions returned the same
                        // registry pointer anyway.
    } else {
      hist = resolved;
    }
  }
  static_cast<LatencyHistogram*>(hist)->Record(wait_us);
}

}  // namespace

// ---------------------------------------------------------------------------
// Mutex / CondVar slow paths (declared in mutex.h).

namespace profiler_internal {

std::atomic<bool> g_contention_enabled{true};

uint64_t ContentionNowUs() { return MonotonicMicros(); }

void RecordCondVarWait(Mutex* mu, uint64_t wait_us) {
  RecordContentionSite(
      reinterpret_cast<uintptr_t>(__builtin_return_address(0)), wait_us);
  if (mu->name_ != nullptr) {
    RecordNamedContention(mu->name_, &mu->contention_hist_, wait_us);
  }
}

}  // namespace profiler_internal

void Mutex::SlowLock() {
  if (!profiler_internal::ContentionEnabled()) {
    mu_.lock();
    return;
  }
  const uint64_t start_us = MonotonicMicros();
  mu_.lock();
  const uint64_t wait_us = MonotonicMicros() - start_us;
  RecordContentionSite(
      reinterpret_cast<uintptr_t>(__builtin_return_address(0)), wait_us);
  if (name_ != nullptr) {
    RecordNamedContention(name_, &contention_hist_, wait_us);
  }
}

// ---------------------------------------------------------------------------
// CPU profiler.

std::string CpuProfile::FoldedFormat() const {
  std::string out;
  for (const auto& [stack, count] : folded) {
    out.append(stack);
    out.push_back(' ');
    out.append(std::to_string(count));
    out.push_back('\n');
  }
  return out;
}

std::string CpuProfile::JsonTopN(size_t n) const {
  // Self = leaf (innermost) frame of each stack; inclusive = stacks the
  // symbol appears anywhere in (deduped per stack).
  std::map<std::string, uint64_t> self, incl;
  for (const auto& [stack, count] : folded) {
    std::vector<std::string> frames;
    size_t pos = 0;
    while (pos <= stack.size()) {
      const size_t semi = stack.find(';', pos);
      const size_t end = semi == std::string::npos ? stack.size() : semi;
      frames.push_back(stack.substr(pos, end - pos));
      if (semi == std::string::npos) break;
      pos = semi + 1;
    }
    if (frames.empty()) continue;
    self[frames.back()] += count;
    std::map<std::string, bool> seen;
    for (const auto& f : frames) {
      if (!seen.emplace(f, true).second) continue;
      incl[f] += count;
    }
  }
  std::vector<std::pair<std::string, uint64_t>> top(self.begin(), self.end());
  std::stable_sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (top.size() > n) top.resize(n);

  std::string out = "{\"hz\":" + std::to_string(hz) +
                    ",\"duration_s\":" + std::to_string(duration_s) +
                    ",\"samples\":" + std::to_string(samples) +
                    ",\"dropped\":" + std::to_string(dropped) + ",\"top\":[";
  bool first = true;
  for (const auto& [symbol, count] : top) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"symbol\":\"" + EscapeJson(symbol) +
           "\",\"self\":" + std::to_string(count) + ",\"self_pct\":" +
           std::to_string(samples == 0 ? 0.0
                                       : 100.0 * static_cast<double>(count) /
                                             static_cast<double>(samples)) +
           ",\"inclusive\":" + std::to_string(incl[symbol]) + "}";
  }
  out += "]}";
  return out;
}

Status StartCpuProfiler(int hz) {
  hz = ClampInt(hz, kMinProfileHz, kMaxProfileHz);
  MutexLock lock(&g_profiler_mu);
  if (g_profiler_running) {
    return Status::FailedPrecondition("cpu profiler already running");
  }
  // Prime backtrace() off-signal: its first call may dlopen the unwinder
  // library, which must never happen inside the handler.
  void* prime[4];
  (void)backtrace(prime, 4);

  g_ring_pos.store(0, std::memory_order_relaxed);
  g_ring_dropped.store(0, std::memory_order_relaxed);
  for (uint32_t i = 0; i < kRingSamples; ++i) {
    g_ring[i].depth.store(0, std::memory_order_relaxed);
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = ProfilerSignalHandler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, &g_old_sigaction) != 0) {
    return Status::Internal(std::string("sigaction(SIGPROF): ") +
                            std::strerror(errno));
  }
  g_profiler_hz = hz;
  g_profiler_window_start_us = MonotonicMicros();
  g_capturing.store(true, std::memory_order_relaxed);
  ArmTimer(hz);
  g_profiler_running = true;
  return Status::OK();
}

bool CpuProfilerRunning() {
  MutexLock lock(&g_profiler_mu);
  return g_profiler_running;
}

Result<CpuProfile> StopCpuProfiler() {
  MutexLock lock(&g_profiler_mu);
  if (!g_profiler_running) {
    return Status::FailedPrecondition("cpu profiler not running");
  }
  DisarmTimer();
  QuiesceCaptureLocked();
  sigaction(SIGPROF, &g_old_sigaction, nullptr);
  CpuProfile profile = HarvestRingLocked(g_profiler_hz);
  profile.duration_s =
      static_cast<double>(MonotonicMicros() - g_profiler_window_start_us) /
      1e6;
  g_profiler_running = false;
  return profile;
}

Result<CpuProfile> DrainCpuProfile() {
  MutexLock lock(&g_profiler_mu);
  if (!g_profiler_running) {
    return Status::FailedPrecondition("cpu profiler not running");
  }
  QuiesceCaptureLocked();
  CpuProfile profile = HarvestRingLocked(g_profiler_hz);
  const uint64_t now_us = MonotonicMicros();
  profile.duration_s =
      static_cast<double>(now_us - g_profiler_window_start_us) / 1e6;
  g_profiler_window_start_us = now_us;
  g_capturing.store(true, std::memory_order_relaxed);
  return profile;
}

Result<CpuProfile> ProfileWindow(int hz, int seconds) {
  hz = ClampInt(hz, kMinProfileHz, kMaxProfileHz);
  seconds = ClampInt(seconds, kMinProfileSeconds, kMaxProfileSeconds);
  if (g_window_active.exchange(true)) {
    return Status::FailedPrecondition("profiler busy");
  }
  struct WindowGuard {
    ~WindowGuard() { g_window_active.store(false); }
  } guard;

  static Counter* const windows_total =
      MetricsRegistry::Instance().GetCounter("profile.windows_total");
  windows_total->Increment();

  if (CpuProfilerRunning()) {
    // Ride the always-on profiler: discard what accumulated before the
    // window, sleep it out, and return exactly the window's samples.
    auto discard = DrainCpuProfile();
    if (!discard.ok()) return discard.status();
    SleepSeconds(seconds);
    return DrainCpuProfile();
  }
  TCVS_RETURN_NOT_OK(StartCpuProfiler(hz));
  SleepSeconds(seconds);
  return StopCpuProfiler();
}

// ---------------------------------------------------------------------------
// Contention profile rendering.

void SetContentionProfilingEnabled(bool enabled) {
  profiler_internal::g_contention_enabled.store(enabled,
                                                std::memory_order_relaxed);
}

bool ContentionProfilingEnabled() {
  return profiler_internal::ContentionEnabled();
}

std::vector<ContentionSite> ContentionProfile() {
  std::vector<ContentionSite> sites;
  for (size_t i = 0; i < kContentionSlots; ++i) {
    const uintptr_t pc = g_contention[i].pc.load(std::memory_order_acquire);
    if (pc == 0) continue;
    ContentionSite site;
    site.pc = pc;
    site.waits = g_contention[i].waits.load(std::memory_order_relaxed);
    site.total_us = g_contention[i].total_us.load(std::memory_order_relaxed);
    if (site.waits == 0) continue;  // Claimed but not yet recorded.
    site.symbol = SymbolizePc(reinterpret_cast<void*>(pc));
    sites.push_back(std::move(site));
  }
  std::stable_sort(sites.begin(), sites.end(),
                   [](const ContentionSite& a, const ContentionSite& b) {
                     return a.total_us > b.total_us;
                   });
  return sites;
}

std::string ContentionJson() {
  std::vector<ContentionSite> sites = ContentionProfile();
  std::string out = "{\"sites\":[";
  bool first = true;
  for (const ContentionSite& site : sites) {
    if (!first) out.push_back(',');
    first = false;
    char pc_hex[32];
    std::snprintf(pc_hex, sizeof(pc_hex), "0x%zx",
                  static_cast<size_t>(site.pc));
    out += std::string("{\"pc\":\"") + pc_hex + "\",\"symbol\":\"" +
           EscapeJson(site.symbol) +
           "\",\"waits\":" + std::to_string(site.waits) +
           ",\"total_us\":" + std::to_string(site.total_us) + "}";
  }
  out += "],\"dropped\":" +
         std::to_string(g_contention_dropped.load(std::memory_order_relaxed)) +
         "}";
  return out;
}

void ResetContentionForTesting() {
  for (size_t i = 0; i < kContentionSlots; ++i) {
    g_contention[i].pc.store(0, std::memory_order_relaxed);
    g_contention[i].waits.store(0, std::memory_order_relaxed);
    g_contention[i].total_us.store(0, std::memory_order_relaxed);
  }
  g_contention_dropped.store(0, std::memory_order_relaxed);
}

}  // namespace util
}  // namespace tcvs
