#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace tcvs {
namespace util {

/// Severity levels for the library logger.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Global minimum level; messages below it are dropped.
/// Defaults to kWarn so library internals are silent in normal use.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// \brief One log statement; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

/// \brief Fatal-check failure: prints and aborts. Used for programming errors
/// (invariant violations), never for data-dependent failures, which return
/// Status.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& extra);

}  // namespace util
}  // namespace tcvs

#define TCVS_LOG(level)                                          \
  ::tcvs::util::LogMessage(::tcvs::util::LogLevel::k##level, \
                           __FILE__, __LINE__)

#define TCVS_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) ::tcvs::util::CheckFailed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define TCVS_CHECK_OK(expr)                                            \
  do {                                                                 \
    ::tcvs::Status _st = (expr);                                       \
    if (!_st.ok())                                                     \
      ::tcvs::util::CheckFailed(#expr, __FILE__, __LINE__, _st.ToString()); \
  } while (false)

#define TCVS_DCHECK(expr) TCVS_CHECK(expr)
