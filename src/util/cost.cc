#include "util/cost.h"

#include <cinttypes>
#include <cstdio>

#include "util/serde.h"

namespace tcvs {
namespace util {

namespace {

thread_local CostCounters* tls_cost_counters = nullptr;

void AppendJsonEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendHexId(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"%016" PRIx64 "\"", v);
  *out += buf;
}

}  // namespace

CostScope::CostScope() : prev_(tls_cost_counters) {
  tls_cost_counters = &counters_;
}

CostScope::~CostScope() { tls_cost_counters = prev_; }

CostCounters* CurrentCostCounters() { return tls_cost_counters; }

std::string SlowOpRecord::JsonFormat() const {
  std::string out = "{\"method\":";
  AppendJsonEscaped(&out, method);
  out += ",\"latency_us\":";
  AppendU64(&out, latency_us);
  out += ",\"trace_id\":";
  AppendHexId(&out, trace_id);
  out += ",\"ts_us\":";
  AppendU64(&out, ts_us);
  out += ",\"cost\":{\"hashes\":";
  AppendU64(&out, cost.hashes);
  out += ",\"bytes_hashed\":";
  AppendU64(&out, cost.bytes_hashed);
  out += ",\"sig_verifies\":";
  AppendU64(&out, cost.sig_verifies);
  out += ",\"vo_bytes_built\":";
  AppendU64(&out, cost.vo_bytes_built);
  out += ",\"wal_appends\":";
  AppendU64(&out, cost.wal_appends);
  out += ",\"wal_fsync_wait_us\":";
  AppendU64(&out, cost.wal_fsync_wait_us);
  out += ",\"queue_us\":";
  AppendU64(&out, cost.queue_us);
  out += "},\"spans\":[";
  bool first = true;
  for (const TraceDump::Event& e : spans) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    AppendJsonEscaped(&out, e.name);
    out += ",\"start_us\":";
    AppendU64(&out, e.start_us);
    out += ",\"duration_us\":";
    AppendU64(&out, e.duration_us);
    out += ",\"trace_id\":";
    AppendHexId(&out, e.trace_id);
    out += ",\"span_id\":";
    AppendHexId(&out, e.span_id);
    out += ",\"parent_span_id\":";
    AppendHexId(&out, e.parent_span_id);
    out += "}";
  }
  out += "]}";
  return out;
}

Bytes SlowOpRecord::Serialize() const {
  Writer w;
  // SlowOpRecord wire version. v2 added cost.queue_us (queue-delay
  // attribution); v1 records read back with queue_us = 0.
  w.PutU8(2);
  w.PutString(method);
  w.PutU64(latency_us);
  w.PutU64(trace_id);
  w.PutU64(ts_us);
  w.PutU64(cost.hashes);
  w.PutU64(cost.bytes_hashed);
  w.PutU64(cost.sig_verifies);
  w.PutU64(cost.vo_bytes_built);
  w.PutU64(cost.wal_appends);
  w.PutU64(cost.wal_fsync_wait_us);
  w.PutU64(cost.queue_us);
  w.PutU32(static_cast<uint32_t>(spans.size()));
  for (const TraceDump::Event& e : spans) {
    w.PutString(e.name);
    w.PutU64(e.start_us);
    w.PutU64(e.duration_us);
    w.PutU32(e.thread);
    w.PutU64(e.trace_id);
    w.PutU64(e.span_id);
    w.PutU64(e.parent_span_id);
  }
  return w.Take();
}

Result<SlowOpRecord> SlowOpRecord::Deserialize(const Bytes& data) {
  Reader r(data);
  TCVS_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version < 1 || version > 2) {
    return Status::InvalidArgument("unsupported slow-op record version");
  }
  SlowOpRecord rec;
  TCVS_ASSIGN_OR_RETURN(rec.method, r.GetString());
  TCVS_ASSIGN_OR_RETURN(rec.latency_us, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(rec.trace_id, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(rec.ts_us, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(rec.cost.hashes, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(rec.cost.bytes_hashed, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(rec.cost.sig_verifies, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(rec.cost.vo_bytes_built, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(rec.cost.wal_appends, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(rec.cost.wal_fsync_wait_us, r.GetU64());
  if (version >= 2) {
    TCVS_ASSIGN_OR_RETURN(rec.cost.queue_us, r.GetU64());
  }
  TCVS_ASSIGN_OR_RETURN(uint32_t n_spans, r.GetU32());
  if (n_spans > ScopedSpanCollector::kMaxSpans) {
    return Status::InvalidArgument("slow-op record with too many spans");
  }
  rec.spans.reserve(n_spans);
  for (uint32_t i = 0; i < n_spans; ++i) {
    TraceDump::Event e;
    TCVS_ASSIGN_OR_RETURN(e.name, r.GetString());
    TCVS_ASSIGN_OR_RETURN(e.start_us, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(e.duration_us, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(e.thread, r.GetU32());
    TCVS_ASSIGN_OR_RETURN(e.trace_id, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(e.span_id, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(e.parent_span_id, r.GetU64());
    rec.spans.push_back(std::move(e));
  }
  return rec;
}

}  // namespace util
}  // namespace tcvs
