#pragma once

/// \file
/// Trust-boundary taint attribute macros (the util/thread_annotations.h
/// idiom, applied to data provenance instead of locks).
///
/// The soundness argument of Trusted CVS rests on one invariant: every byte
/// that arrives from the untrusted server — query replies, verification
/// objects, signed root digests, epoch-state blobs — must pass a
/// cryptographic check before it may influence trusted client state. These
/// macros make the three roles of that invariant visible to tooling:
///
///  - TCVS_UNTRUSTED_SOURCE  marks a function whose return value crosses the
///    trust boundary inward (wire deserializers). Such functions return
///    `Result<util::Tainted<T>>` so the type system quarantines the value.
///  - TCVS_ENDORSER          marks a function that performs the cryptographic
///    or structural check which justifies unwrapping (VO verify, signature
///    verify, consistency proof, envelope check). Only endorsers may launder
///    taint, and each is tied to a registered verifier token (see
///    util/untrusted.h).
///  - TCVS_TRUSTED_SINK      marks a function that mutates trusted state
///    (verified cache writes, WAL apply, gctr/sigma register folds). Sinks
///    accept only unwrapped values; handing them anything derived from an
///    unendorsed `.untrusted()` borrow is a taint-check finding.
///
/// Under Clang the macros expand to `[[clang::annotate("tcvs::...")]]` so a
/// libclang AST pass (tools/taint_check.py) can follow source→sink flows in
/// the compiled AST. Under GCC they expand to nothing; the pure-Python
/// engine in tools/taint_check.py and the registry rules in tools/lint.py
/// remain the portable backstop (mirroring how -Wthread-safety degrades to
/// the TSan preset, see tools/check.sh).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(annotate)
#define TCVS_TAINT_ANNOTATION_(x) [[clang::annotate(x)]]
#else
#define TCVS_TAINT_ANNOTATION_(x)  // no-op
#endif
#else
#define TCVS_TAINT_ANNOTATION_(x)  // no-op
#endif

/// Function whose return value is server-originated and unverified.
#define TCVS_UNTRUSTED_SOURCE TCVS_TAINT_ANNOTATION_("tcvs::untrusted_source")

/// Function performing the check that justifies unwrapping a Tainted<T>.
#define TCVS_ENDORSER TCVS_TAINT_ANNOTATION_("tcvs::endorser")

/// Function mutating trusted client state; accepts only unwrapped values.
#define TCVS_TRUSTED_SINK TCVS_TAINT_ANNOTATION_("tcvs::trusted_sink")
