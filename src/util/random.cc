#include "util/random.h"

#include <cmath>

namespace tcvs {
namespace util {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Bytes Rng::RandomBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t v = Next();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<uint8_t>(v >> (8 * b));
  }
  if (i < n) {
    uint64_t v = Next();
    while (i < n) {
      out[i++] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  zetan_ = 0;
  for (uint64_t i = 1; i <= n_; ++i) zetan_ += 1.0 / std::pow(double(i), theta_);
  double zeta2 = 0;
  for (uint64_t i = 1; i <= 2 && i <= n_; ++i) {
    zeta2 += 1.0 / std::pow(double(i), theta_);
  }
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) / (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next(Rng* rng) {
  if (theta_ == 0.0 || n_ == 1) return rng->Uniform(n_);
  double u = rng->NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v =
      static_cast<uint64_t>(double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= n_) v = n_ - 1;
  return v;
}

}  // namespace util
}  // namespace tcvs
