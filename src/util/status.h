#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace tcvs {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kCorruption = 6,
  /// Cryptographic verification failed (bad digest, bad signature, bad VO).
  kVerificationFailure = 7,
  /// The untrusted server deviated from every run of the trusted system.
  kDeviationDetected = 8,
  kUnimplemented = 9,
  kInternal = 10,
  kIOError = 11,
  /// The peer is (temporarily) unreachable: connect refused, retry budget
  /// exhausted, or the server is restarting. Retryable — unlike kCorruption
  /// or kVerificationFailure, which must fail loud and never be retried.
  kUnavailable = 12,
  /// An I/O deadline elapsed before the operation completed. Retryable.
  kDeadlineExceeded = 13,
};

/// \brief Outcome of a fallible operation (Arrow/RocksDB idiom).
///
/// Library code never throws; every fallible function returns a Status (or a
/// Result<T>, see result.h). Statuses are cheap to copy in the OK case: an OK
/// Status carries no heap state.
///
/// [[nodiscard]]: silently dropping a Status is a dropped error — in this
/// codebase often a dropped *verification* error — so it is a compile
/// warning (-Werror: a build break). Cast to void only where ignoring is a
/// documented decision.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Named constructors, one per StatusCode.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status VerificationFailure(std::string msg) {
    return Status(StatusCode::kVerificationFailure, std::move(msg));
  }
  static Status DeviationDetected(std::string msg) {
    return Status(StatusCode::kDeviationDetected, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// @}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsVerificationFailure() const {
    return code_ == StatusCode::kVerificationFailure;
  }
  bool IsDeviationDetected() const {
    return code_ == StatusCode::kDeviationDetected;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// Renders "<CODE>: <message>", e.g. "NotFound: no such file".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Human-readable name of a StatusCode ("OK", "NotFound", ...).
std::string_view StatusCodeToString(StatusCode code);

}  // namespace tcvs

/// Propagates a non-OK Status to the caller (RocksDB/Arrow idiom).
#define TCVS_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::tcvs::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Evaluates a Result<T> expression, propagating failure, else binds `lhs`.
#define TCVS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#define TCVS_ASSIGN_OR_RETURN(lhs, rexpr) \
  TCVS_ASSIGN_OR_RETURN_IMPL(             \
      TCVS_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define TCVS_CONCAT_INNER_(a, b) a##b
#define TCVS_CONCAT_(a, b) TCVS_CONCAT_INNER_(a, b)
