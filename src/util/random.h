#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace tcvs {
namespace util {

/// \brief Deterministic PRNG (xoshiro256++) used for workload generation,
/// key generation in tests, and property sweeps.
///
/// Not cryptographically secure — production key material would use an OS
/// CSPRNG; the simulator favours reproducibility, so every experiment is
/// parameterized by an explicit seed.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(uint64_t seed);

  /// Next 64 uniform random bits.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// `n` random bytes.
  Bytes RandomBytes(size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  uint64_t s_[4];
};

/// \brief Zipf-distributed integer generator over [0, n), exponent `theta`.
///
/// Used to model skewed file popularity in CVS workloads (a few hot files,
/// a long tail). theta=0 degenerates to uniform.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  /// Draws one sample in [0, n).
  uint64_t Next(Rng* rng);

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

}  // namespace util
}  // namespace tcvs
