#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/serde.h"
#include "util/thread_annotations.h"

namespace tcvs {
namespace util {

/// \file
/// Security audit-event log: a typed, bounded, thread-safe record of every
/// security-significant observation a verifier makes — the SUNDR-style
/// forensic complement to the consistency protocols. Where metrics answer
/// "how many", the audit log answers "what exactly happened": each event
/// names the user, the operation counter, the epoch, the expected/actual
/// digests, and the trace id of the RPC exchange that revealed it, so an
/// auditor can pivot from "fork detected" to the causal trace.
///
/// Emission sites live in the verifying layers (core/user, cvs/trusted,
/// mtree/vo, crypto/signature, sim/kernel). Events are ONLY created through
/// the AuditEventKind enum — ad-hoc string-kinded events are banned by
/// tools/lint.py (rule `audit-event`).
///
/// Lock ranking: the AuditLog mutex is a LEAF, one rank with the per-metric
/// locks — Emit() touches the metrics registry (a leaf chain of its own)
/// strictly BEFORE taking `mu_`, and no audit code calls back into any
/// subsystem, so `subsystem lock → audit mu_` stays acyclic (see
/// ARCHITECTURE.md, "Tracing & audit").

/// \brief What an audit event attests. Wire-stable: values are part of the
/// serialized form; append, never renumber.
enum class AuditEventKind : uint8_t {
  /// A digital signature failed to verify (crypto layer or protocol step).
  kSignatureVerifyFailure = 1,
  /// A verification object's root digest (or internal chain) contradicted
  /// the trusted root the client holds.
  kVoMismatch = 2,
  /// The server presented an operation counter older than one already
  /// observed — a rollback or replayed state.
  kCounterRegression = 3,
  /// A sync-up round's global check passed; `gctr` and `lctr_sum` record
  /// the agreement (Protocol I: some gctr == Σ lctr).
  kSyncUpPass = 4,
  /// A sync-up round's global check failed: the server deviated somewhere
  /// since the last successful sync.
  kSyncUpFail = 5,
  /// Fork/partition detection: the pooled register XOR did not match any
  /// user's expected fingerprint — two users were shown diverging
  /// histories. Carries both digests.
  kForkDetected = 6,
  /// core/forensics localized the first faulty transition from pooled
  /// journals; `ctr` is the first bad counter.
  kForensicsLocalized = 7,
  /// Catch-all deviation report (sim kernel detection, audit-log rollback),
  /// with the verifier's reason in `detail`.
  kDeviationDetected = 8,
};

/// Stable lowercase snake_case name, e.g. "fork_detected".
const char* AuditEventKindName(AuditEventKind kind);

/// \brief One audit event. Fields that do not apply to a kind stay at their
/// zero/empty defaults; `seq` and `ts_us` are assigned by AuditLog::Emit,
/// and a zero `trace_id` is filled from the thread's active span context.
struct AuditEvent {
  AuditEvent() = default;
  explicit AuditEvent(AuditEventKind k) : kind(k) {}

  AuditEventKind kind = AuditEventKind::kDeviationDetected;
  /// Process-local monotone sequence number, assigned at Emit (never 0).
  uint64_t seq = 0;
  /// Emission time, microseconds on the process steady clock.
  uint64_t ts_us = 0;
  /// The observing/affected user id (0 when not user-specific).
  uint32_t user = 0;
  /// The operation counter the event is about (e.g. the regressed counter).
  uint64_t ctr = 0;
  /// Epoch at emission time (Protocol III; 0 when epochs are off).
  uint64_t epoch = 0;
  /// \name Sync-up bookkeeping: the global counter vs the sum of local
  /// counters (Protocol I's agreement check).
  /// @{
  uint64_t gctr = 0;
  uint64_t lctr_sum = 0;
  /// @}
  /// \name Divergence evidence: what the verifier expected vs what the
  /// server's answer implied (fingerprints, root digests).
  /// @{
  Bytes expected_digest;
  Bytes actual_digest;
  /// @}
  /// The causal trace active when the deviation was observed.
  uint64_t trace_id = 0;
  /// Human-readable specifics (scheme name, localization explanation, …).
  std::string detail;

  /// One JSON object (single line): {"seq":…,"kind":"…",…,"trace_id":"…"}.
  /// Digests and the trace id are hex strings.
  std::string JsonFormat() const;

  void SerializeTo(Writer* w) const;
  static Result<AuditEvent> DeserializeFrom(Reader* r);
};

/// \brief The process-wide bounded audit log. Thread-safe; keeps the newest
/// `capacity()` events (`total_emitted()` still counts everything, so a
/// reader can tell when the ring dropped history).
class AuditLog {
 public:
  static AuditLog& Instance();

  /// Default number of retained events (tunable via set_capacity).
  static constexpr size_t kDefaultCapacity = 1024;
  static constexpr size_t kMinCapacity = 16;
  static constexpr size_t kMaxCapacity = 1u << 20;

  /// Records `event`, assigning `seq`/`ts_us` and defaulting a zero
  /// `trace_id` from CurrentSpanContext(). Also bumps the
  /// `audit.events_total` counter and the per-kind counter.
  void Emit(AuditEvent event) TCVS_EXCLUDES(mu_);

  /// All retained events, oldest first.
  std::vector<AuditEvent> Snapshot() const TCVS_EXCLUDES(mu_);

  /// Retained events with seq > min_seq, oldest first (incremental readers:
  /// tcvsd --log-json).
  std::vector<AuditEvent> SnapshotSince(uint64_t min_seq) const
      TCVS_EXCLUDES(mu_);

  /// Count of every event ever emitted (≥ retained size).
  uint64_t total_emitted() const TCVS_EXCLUDES(mu_);

  /// Clamped to [kMinCapacity, kMaxCapacity]; trims oldest if shrinking.
  void set_capacity(size_t capacity) TCVS_EXCLUDES(mu_);
  size_t capacity() const TCVS_EXCLUDES(mu_);

  /// Wire form of Snapshot() — the kEvents RPC payload.
  Bytes Serialize() const TCVS_EXCLUDES(mu_);
  // taint-exempt: observability-only — the kEvents payload is rendered for
  // diagnostics and feeds no trusted sink or protocol register.
  static Result<std::vector<AuditEvent>> Deserialize(const Bytes& data);

  /// Drops every retained event and restores defaults; the sequence
  /// counter keeps advancing (seq stays unique for the process lifetime).
  void ResetForTesting() TCVS_EXCLUDES(mu_);

 private:
  AuditLog() = default;

  mutable Mutex mu_;
  std::deque<AuditEvent> events_ TCVS_GUARDED_BY(mu_);
  size_t capacity_ TCVS_GUARDED_BY(mu_) = kDefaultCapacity;
  uint64_t next_seq_ TCVS_GUARDED_BY(mu_) = 1;
  uint64_t total_emitted_ TCVS_GUARDED_BY(mu_) = 0;
};

}  // namespace util
}  // namespace tcvs
