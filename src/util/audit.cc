#include "util/audit.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/metrics.h"

namespace tcvs {
namespace util {

namespace {

/// Per-kind counters with literal names (metric-name lint rule). The
/// registry is its own leaf-lock chain; callers must NOT hold the audit
/// log's mu_ here.
Counter* KindCounter(AuditEventKind kind) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  switch (kind) {
    case AuditEventKind::kSignatureVerifyFailure:
      return reg.GetCounter("audit.signature_verify_failures_total");
    case AuditEventKind::kVoMismatch:
      return reg.GetCounter("audit.vo_mismatches_total");
    case AuditEventKind::kCounterRegression:
      return reg.GetCounter("audit.counter_regressions_total");
    case AuditEventKind::kSyncUpPass:
      return reg.GetCounter("audit.sync_up_passes_total");
    case AuditEventKind::kSyncUpFail:
      return reg.GetCounter("audit.sync_up_failures_total");
    case AuditEventKind::kForkDetected:
      return reg.GetCounter("audit.forks_detected_total");
    case AuditEventKind::kForensicsLocalized:
      return reg.GetCounter("audit.forensics_localizations_total");
    case AuditEventKind::kDeviationDetected:
      return reg.GetCounter("audit.deviations_detected_total");
  }
  return reg.GetCounter("audit.unknown_events_total");
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64Field(std::string* out, const char* key, uint64_t v,
                    bool* first) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, *first ? "" : ",", key,
                v);
  *first = false;
  *out += buf;
}

}  // namespace

const char* AuditEventKindName(AuditEventKind kind) {
  switch (kind) {
    case AuditEventKind::kSignatureVerifyFailure:
      return "signature_verify_failure";
    case AuditEventKind::kVoMismatch:
      return "vo_mismatch";
    case AuditEventKind::kCounterRegression:
      return "counter_regression";
    case AuditEventKind::kSyncUpPass:
      return "sync_up_pass";
    case AuditEventKind::kSyncUpFail:
      return "sync_up_fail";
    case AuditEventKind::kForkDetected:
      return "fork_detected";
    case AuditEventKind::kForensicsLocalized:
      return "forensics_localized";
    case AuditEventKind::kDeviationDetected:
      return "deviation_detected";
  }
  return "unknown";
}

std::string AuditEvent::JsonFormat() const {
  std::string out = "{";
  bool first = true;
  AppendU64Field(&out, "seq", seq, &first);
  out += ",\"kind\":";
  AppendJsonEscaped(&out, AuditEventKindName(kind));
  AppendU64Field(&out, "ts_us", ts_us, &first);
  AppendU64Field(&out, "user", user, &first);
  AppendU64Field(&out, "ctr", ctr, &first);
  AppendU64Field(&out, "epoch", epoch, &first);
  AppendU64Field(&out, "gctr", gctr, &first);
  AppendU64Field(&out, "lctr_sum", lctr_sum, &first);
  out += ",\"expected_digest\":";
  AppendJsonEscaped(&out, HexEncode(expected_digest));
  out += ",\"actual_digest\":";
  AppendJsonEscaped(&out, HexEncode(actual_digest));
  char trace_buf[40];
  std::snprintf(trace_buf, sizeof(trace_buf), ",\"trace_id\":\"%016" PRIx64 "\"",
                trace_id);
  out += trace_buf;
  out += ",\"detail\":";
  AppendJsonEscaped(&out, detail);
  out.push_back('}');
  return out;
}

void AuditEvent::SerializeTo(Writer* w) const {
  w->PutU8(static_cast<uint8_t>(kind));
  w->PutU64(seq);
  w->PutU64(ts_us);
  w->PutU32(user);
  w->PutU64(ctr);
  w->PutU64(epoch);
  w->PutU64(gctr);
  w->PutU64(lctr_sum);
  w->PutBytes(expected_digest);
  w->PutBytes(actual_digest);
  w->PutU64(trace_id);
  w->PutString(detail);
}

Result<AuditEvent> AuditEvent::DeserializeFrom(Reader* r) {
  AuditEvent e;
  TCVS_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (kind < 1 || kind > 8) {
    return Status::InvalidArgument("unknown audit event kind");
  }
  e.kind = static_cast<AuditEventKind>(kind);
  TCVS_ASSIGN_OR_RETURN(e.seq, r->GetU64());
  TCVS_ASSIGN_OR_RETURN(e.ts_us, r->GetU64());
  TCVS_ASSIGN_OR_RETURN(e.user, r->GetU32());
  TCVS_ASSIGN_OR_RETURN(e.ctr, r->GetU64());
  TCVS_ASSIGN_OR_RETURN(e.epoch, r->GetU64());
  TCVS_ASSIGN_OR_RETURN(e.gctr, r->GetU64());
  TCVS_ASSIGN_OR_RETURN(e.lctr_sum, r->GetU64());
  TCVS_ASSIGN_OR_RETURN(e.expected_digest, r->GetBytes());
  TCVS_ASSIGN_OR_RETURN(e.actual_digest, r->GetBytes());
  TCVS_ASSIGN_OR_RETURN(e.trace_id, r->GetU64());
  TCVS_ASSIGN_OR_RETURN(e.detail, r->GetString());
  return e;
}

AuditLog& AuditLog::Instance() {
  // Leaked like the metrics registry: destructors running at process exit
  // may still emit.
  static AuditLog* const instance = new AuditLog();  // lint:allow-new
  return *instance;
}

void AuditLog::Emit(AuditEvent event) {
  // Metrics first — the registry chain and our mu_ are both leaves, never
  // nested inside one another.
  static Counter* const total =
      MetricsRegistry::Instance().GetCounter("audit.events_total");
  total->Increment();
  KindCounter(event.kind)->Increment();
  if (event.ts_us == 0) event.ts_us = MonotonicMicros();
  if (event.trace_id == 0) event.trace_id = CurrentSpanContext().trace_id;
  MutexLock lock(&mu_);
  event.seq = next_seq_++;
  ++total_emitted_;
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) events_.pop_front();
}

std::vector<AuditEvent> AuditLog::Snapshot() const {
  MutexLock lock(&mu_);
  return std::vector<AuditEvent>(events_.begin(), events_.end());
}

std::vector<AuditEvent> AuditLog::SnapshotSince(uint64_t min_seq) const {
  MutexLock lock(&mu_);
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : events_) {
    if (e.seq > min_seq) out.push_back(e);
  }
  return out;
}

uint64_t AuditLog::total_emitted() const {
  MutexLock lock(&mu_);
  return total_emitted_;
}

void AuditLog::set_capacity(size_t capacity) {
  capacity = std::max(kMinCapacity, std::min(kMaxCapacity, capacity));
  MutexLock lock(&mu_);
  capacity_ = capacity;
  while (events_.size() > capacity_) events_.pop_front();
}

size_t AuditLog::capacity() const {
  MutexLock lock(&mu_);
  return capacity_;
}

Bytes AuditLog::Serialize() const {
  const std::vector<AuditEvent> events = Snapshot();
  Writer w;
  w.PutU8(1);  // Audit log wire version.
  w.PutU32(static_cast<uint32_t>(events.size()));
  for (const AuditEvent& e : events) e.SerializeTo(&w);
  return w.Take();
}

Result<std::vector<AuditEvent>> AuditLog::Deserialize(const Bytes& data) {
  Reader r(data);
  TCVS_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != 1) {
    return Status::InvalidArgument("unsupported audit log version");
  }
  TCVS_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  if (count > kMaxCapacity) {
    return Status::InvalidArgument("audit log too large");
  }
  std::vector<AuditEvent> events;
  events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TCVS_ASSIGN_OR_RETURN(AuditEvent e, AuditEvent::DeserializeFrom(&r));
    events.push_back(std::move(e));
  }
  return events;
}

void AuditLog::ResetForTesting() {
  MutexLock lock(&mu_);
  events_.clear();
  capacity_ = kDefaultCapacity;
  total_emitted_ = 0;  // seq keeps advancing; only the tallies reset.
}

}  // namespace util
}  // namespace tcvs
