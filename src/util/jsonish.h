#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace tcvs {
namespace util {

/// \brief A parsed JSON value: the minimal recursive variant `tcvs top` and
/// the admin-plane tests need to read `/varz` snapshots and slow-op lines.
/// Strict enough for machine-emitted JSON (no comments, no trailing commas);
/// numbers are held as doubles (exact for counters below 2^53, which a
/// process emitting them would take centuries to exceed). Parsing is for
/// OBSERVABILITY payloads only — nothing parsed here may flow into a
/// protocol register or trusted sink, which is why this lives beside the
/// other human-facing renderers and not behind the taint boundary.
class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  double number() const { return number_; }
  uint64_t AsU64() const {
    return number_ <= 0 ? 0 : static_cast<uint64_t>(number_ + 0.5);
  }
  bool boolean() const { return bool_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
  }

  /// `Get(key)` as a u64 number, or `fallback` when absent / not a number.
  uint64_t GetU64(const std::string& key, uint64_t fallback = 0) const {
    const JsonValue* v = Get(key);
    return v != nullptr && v->is_number() ? v->AsU64() : fallback;
  }

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). InvalidArgument on malformed input, with a byte
/// offset in the message.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace util
}  // namespace tcvs
