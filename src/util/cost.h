#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/metrics.h"
#include "util/result.h"

namespace tcvs {
namespace util {

/// \file
/// Per-request cost accounting: the paper's protocol-overhead table,
/// measured live on served traffic instead of in a bench.
///
/// A CostScope installed on a thread makes that thread's instrumented
/// subsystems — SHA-256 compression, signature verification, VO
/// serialization, WAL staging and fsync waits — accumulate into its
/// CostCounters for the scope's lifetime. The serve loop arms one scope per
/// request, aggregates the vector into per-method `rpc.serve.<m>.cost.*`
/// counters (surfaced by `/varz` and `tcvs top`), and attaches it to
/// slow-op records.
///
/// Hot-path cost when no scope is armed: one thread-local pointer load per
/// hook. Scopes nest by shadowing — an inner scope captures alone; the
/// outer resumes when it exits (the serve loop never nests them).

/// \brief The cost vector one request accumulated.
struct CostCounters {
  /// SHA-256 digests finalized.
  uint64_t hashes = 0;
  /// Bytes through the SHA-256 compression function (message + padding).
  uint64_t bytes_hashed = 0;
  /// Signature verifications (batch entries count individually).
  uint64_t sig_verifies = 0;
  /// Bytes of Merkle verification objects serialized for the reply.
  uint64_t vo_bytes_built = 0;
  /// WAL records staged.
  uint64_t wal_appends = 0;
  /// Microseconds blocked waiting for the covering WAL flush (group-commit
  /// wait included — the durability price this request actually paid).
  uint64_t wal_fsync_wait_us = 0;
  /// Microseconds spent queued before work started: connection-queue wait
  /// (accepted but no worker free) plus serve execution-lock wait. With
  /// `work_us := latency_us − queue_us − wal_fsync_wait_us`, a request's
  /// served latency decomposes into queue + work + fsync.
  uint64_t queue_us = 0;

  void Add(const CostCounters& other) {
    hashes += other.hashes;
    bytes_hashed += other.bytes_hashed;
    sig_verifies += other.sig_verifies;
    vo_bytes_built += other.vo_bytes_built;
    wal_appends += other.wal_appends;
    wal_fsync_wait_us += other.wal_fsync_wait_us;
    queue_us += other.queue_us;
  }

  bool operator==(const CostCounters& other) const {
    return hashes == other.hashes && bytes_hashed == other.bytes_hashed &&
           sig_verifies == other.sig_verifies &&
           vo_bytes_built == other.vo_bytes_built &&
           wal_appends == other.wal_appends &&
           wal_fsync_wait_us == other.wal_fsync_wait_us &&
           queue_us == other.queue_us;
  }
};

/// \brief RAII: installs a fresh CostCounters as the thread's accumulation
/// target; restores the previously installed scope (if any) on destruction.
class CostScope {
 public:
  CostScope();
  ~CostScope();

  CostScope(const CostScope&) = delete;
  CostScope& operator=(const CostScope&) = delete;

  const CostCounters& counters() const { return counters_; }

 private:
  CostCounters counters_;
  CostCounters* prev_;
};

/// The calling thread's active accumulation target, or nullptr when no
/// CostScope is installed. Instrumentation hooks do
/// `if (auto* c = CurrentCostCounters()) c->hashes += n;`.
CostCounters* CurrentCostCounters();

/// \brief One served request that exceeded the slow-op threshold: enough to
/// go from "p99 spiked" to the exact request — method, latency, a joinable
/// trace id, the request's own span subtree, and the cost vector saying
/// where the time plausibly went. Emitted by the serve loop as a JSON line
/// (`{"ts_ms":…,"slow_op":{…}}` on stderr) when `--slow-op-us` is armed.
struct SlowOpRecord {
  std::string method;
  uint64_t latency_us = 0;
  uint64_t trace_id = 0;
  /// Request start on the process steady clock (matches span timestamps).
  uint64_t ts_us = 0;
  CostCounters cost;
  /// The spans that finished on the serving thread during this request,
  /// completion order (bounded at ScopedSpanCollector::kMaxSpans).
  std::vector<TraceDump::Event> spans;

  /// One JSON object, single line, no trailing newline. Ids are 16-hex-digit
  /// strings like the trace dump's.
  std::string JsonFormat() const;

  Bytes Serialize() const;
  // taint-exempt: observability-only — slow-op records are rendered for
  // humans and feed no trusted sink or protocol register.
  static Result<SlowOpRecord> Deserialize(const Bytes& data);
};

}  // namespace util
}  // namespace tcvs
