#include "util/fault.h"

#include <cerrno>
#include <cstdlib>

namespace tcvs {
namespace util {

FaultSpec FaultSpec::Always(uint64_t arg) {
  FaultSpec s;
  s.trigger = Trigger::kAlways;
  s.arg = arg;
  return s;
}

FaultSpec FaultSpec::OneShot(uint64_t arg) {
  FaultSpec s;
  s.trigger = Trigger::kOneShot;
  s.arg = arg;
  return s;
}

FaultSpec FaultSpec::Nth(uint64_t n, uint64_t arg) {
  FaultSpec s;
  s.trigger = Trigger::kNthCall;
  s.n = n;
  s.arg = arg;
  return s;
}

FaultSpec FaultSpec::Probability(double p, uint64_t arg, uint64_t seed) {
  FaultSpec s;
  s.trigger = Trigger::kProbability;
  s.probability = p;
  s.arg = arg;
  s.seed = seed;
  return s;
}

namespace {

/// Seed of a point's private probability stream: the explicit spec seed, or
/// an FNV-1a hash of the point name — stable across runs and processes, and
/// distinct per point, so two prob-armed points draw independent sequences.
uint64_t PointSeed(const std::string& point, const FaultSpec& spec) {
  if (spec.seed != 0) return spec.seed;
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : point) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

FaultInjector::FaultInjector() = default;

FaultInjector& FaultInjector::Instance() {
  // Intentionally leaked: fault points fire from arbitrary threads during
  // process teardown, so the registry must outlive static destructors.
  static FaultInjector* instance = new FaultInjector();  // lint:allow-new
  return *instance;
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  MutexLock lock(&mu_);
  Point& p = points_[point];
  if (!p.armed) armed_count_.fetch_add(1, std::memory_order_release);
  p.spec = spec;
  p.armed = true;
  p.hits = 0;
  p.fires = 0;
  p.rng_state = PointSeed(point, spec);
}

void FaultInjector::Disarm(const std::string& point) {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  if (it != points_.end() && it->second.armed) {
    it->second.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Reset() {
  MutexLock lock(&mu_);
  points_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFail(const std::string& point) {
  return ShouldFail(point, nullptr);
}

bool FaultInjector::ShouldFail(const std::string& point, uint64_t* arg) {
  // Fast path: nothing armed anywhere — the production state. Acquire
  // pairs with Arm()'s release increment so an observed nonzero count also
  // makes the armed spec visible once we take the lock (see fault.h).
  if (armed_count_.load(std::memory_order_acquire) == 0) return false;
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return false;
  Point& p = it->second;
  ++p.hits;
  bool fire = false;
  switch (p.spec.trigger) {
    case FaultSpec::Trigger::kAlways:
      fire = true;
      break;
    case FaultSpec::Trigger::kOneShot:
      fire = true;
      break;
    case FaultSpec::Trigger::kNthCall:
      fire = (p.hits == p.spec.n);
      break;
    case FaultSpec::Trigger::kProbability: {
      // splitmix64 draw from this point's private stream, mapped to [0, 1).
      p.rng_state += 0x9E3779B97F4A7C15ull;
      uint64_t z = p.rng_state;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      z ^= z >> 31;
      fire = (z >> 11) * 0x1.0p-53 < p.spec.probability;
      break;
    }
  }
  if (fire) {
    ++p.fires;
    if (arg != nullptr) *arg = p.spec.arg;
    // One-shot and nth-call points auto-disarm after firing so a retried
    // operation succeeds on the next attempt — the common benign-fault shape.
    if (p.spec.trigger == FaultSpec::Trigger::kOneShot ||
        p.spec.trigger == FaultSpec::Trigger::kNthCall) {
      p.armed = false;
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  return fire;
}

uint64_t FaultInjector::hits(const std::string& point) const {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::fires(const std::string& point) const {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

namespace {

/// Strict u64 parse: nonempty, all-digit, no trailing junk. strtoull-style
/// leniency here would silently arm a zeroed spec from a typo'd entry.
bool ParseU64Strict(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || s[0] == '-') return false;
  *out = v;
  return true;
}

bool ParseProbStrict(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;
  *out = v;
  return true;
}

}  // namespace

Status FaultInjector::ArmFromString(const std::string& entry) {
  size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
    return Status::InvalidArgument("fault entry needs point=trigger: " + entry);
  }
  std::string point = entry.substr(0, eq);
  std::string rest = entry.substr(eq + 1);
  uint64_t arg = 0;
  if (size_t at = rest.find('@'); at != std::string::npos) {
    if (!ParseU64Strict(rest.substr(at + 1), &arg)) {
      return Status::InvalidArgument("malformed fault @arg: " + entry);
    }
    rest = rest.substr(0, at);
  }
  FaultSpec spec;
  if (rest == "always") {
    spec = FaultSpec::Always(arg);
  } else if (rest == "oneshot") {
    spec = FaultSpec::OneShot(arg);
  } else if (rest.rfind("nth:", 0) == 0) {
    uint64_t n = 0;
    if (!ParseU64Strict(rest.substr(4), &n) || n == 0) {
      return Status::InvalidArgument("nth trigger needs N >= 1: " + entry);
    }
    spec = FaultSpec::Nth(n, arg);
  } else if (rest.rfind("prob:", 0) == 0) {
    // prob:P or prob:P:SEED — the optional seed picks a different (still
    // bit-exact) per-point draw sequence; see FaultSpec::seed.
    std::string body = rest.substr(5);
    uint64_t seed = 0;
    if (size_t colon = body.find(':'); colon != std::string::npos) {
      if (!ParseU64Strict(body.substr(colon + 1), &seed) || seed == 0) {
        return Status::InvalidArgument("malformed prob seed: " + entry);
      }
      body = body.substr(0, colon);
    }
    double p = 0;
    if (!ParseProbStrict(body, &p)) {
      return Status::InvalidArgument("prob trigger needs P in [0, 1]: " + entry);
    }
    spec = FaultSpec::Probability(p, arg, seed);
  } else {
    return Status::InvalidArgument("unknown fault trigger: " + rest);
  }
  Arm(point, spec);
  return Status::OK();
}

Status FaultInjector::ArmFromEnv(const char* env_var) {
  const char* value = std::getenv(env_var);
  if (value == nullptr || value[0] == '\0') return Status::OK();
  std::string spec(value);
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > start) {
      TCVS_RETURN_NOT_OK(ArmFromString(spec.substr(start, comma - start)));
    }
    start = comma + 1;
  }
  return Status::OK();
}

}  // namespace util
}  // namespace tcvs
