#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace tcvs {
namespace util {

/// \brief The repo's ONLY mutex: std::mutex carrying the thread-safety
/// capability annotations, so `-Wthread-safety` (clang) can prove every
/// access to `TCVS_GUARDED_BY(mu_)` state happens under the lock.
///
/// Raw `std::mutex` / `std::lock_guard` are banned outside `util/`
/// (enforced by tools/lint.py): a raw mutex is invisible to the checker, so
/// state it guards silently falls out of the compile-time proof.
///
/// Lock with MutexLock (RAII); Lock()/Unlock() exist for the rare manual
/// pattern and for CondVar's internal use.
class TCVS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TCVS_ACQUIRE() { mu_.lock(); }
  void Unlock() TCVS_RELEASE() { mu_.unlock(); }

  /// The wrapped primitive, for CondVar only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief RAII lock over a util::Mutex (Abseil idiom). Scoped-capability
/// annotated: the checker knows the capability is held between construction
/// and destruction, and only there.
class TCVS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TCVS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() TCVS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// \brief Condition variable paired with util::Mutex.
///
/// Wait() takes the Mutex the caller already holds (annotated TCVS_REQUIRES,
/// so calling it without the lock is a compile error under clang). The
/// predicate loop stays at the call site — standard condition-variable
/// discipline.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks until notified, reacquires.
  void Wait(Mutex* mu) TCVS_REQUIRES(mu) TCVS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu->native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller still owns the mutex, as annotated.
  }

  /// Like Wait, but returns false if `timeout_ms` elapsed first.
  bool WaitFor(Mutex* mu, int timeout_ms)
      TCVS_REQUIRES(mu) TCVS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu->native(), std::adopt_lock);
    bool notified = cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms)) ==
                    std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  /// Microsecond-resolution WaitFor — for waits shorter than a millisecond,
  /// like the WAL group-commit window, where ms granularity would round a
  /// ~100 µs batching pause up to 1 ms of added commit latency.
  bool WaitForUs(Mutex* mu, int64_t timeout_us)
      TCVS_REQUIRES(mu) TCVS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu->native(), std::adopt_lock);
    bool notified = cv_.wait_for(lock, std::chrono::microseconds(timeout_us)) ==
                    std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace tcvs
