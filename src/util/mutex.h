#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.h"

namespace tcvs {
namespace util {

class Mutex;

/// \name Contention-profiling hooks (defined in util/profiler.cc).
///
/// The lock/wait slow paths below call out of line into the profiler so the
/// uncontended fast path stays a single `try_lock` and the header does not
/// depend on the metrics layer. The out-of-line functions compute the
/// callsite PC themselves via `__builtin_return_address(0)`: because the
/// inline fast paths are expanded into the caller, that PC lands inside the
/// function that contains the `Lock()` / `Wait()` call — exactly the frame
/// the contention profile should attribute the wait to.
namespace profiler_internal {
/// Global switch (default on; `tcvsd --no-contention-profile` clears it).
extern std::atomic<bool> g_contention_enabled;

inline bool ContentionEnabled() {
  return g_contention_enabled.load(std::memory_order_relaxed);
}

/// MonotonicMicros(), out of line (mutex.h cannot include metrics.h).
uint64_t ContentionNowUs();

/// Records a finished condition-variable wait against the caller's PC and,
/// for a named mutex, into its `lock.<name>.contention_us` histogram.
void RecordCondVarWait(Mutex* mu, uint64_t wait_us);
}  // namespace profiler_internal

/// \brief The repo's ONLY mutex: std::mutex carrying the thread-safety
/// capability annotations, so `-Wthread-safety` (clang) can prove every
/// access to `TCVS_GUARDED_BY(mu_)` state happens under the lock.
///
/// Raw `std::mutex` / `std::lock_guard` are banned outside `util/`
/// (enforced by tools/lint.py): a raw mutex is invisible to the checker, so
/// state it guards silently falls out of the compile-time proof.
///
/// Lock with MutexLock (RAII); Lock()/Unlock() exist for the rare manual
/// pattern and for CondVar's internal use.
///
/// **Contention accounting.** Lock() is a fast-path-free `try_lock`; only a
/// contended acquisition falls into the out-of-line SlowLock() (defined in
/// util/profiler.cc), which times the blocking `lock()` and records the
/// wait in the global per-callsite contention table (`/lockz`,
/// util::ContentionProfile()). A mutex constructed with a name additionally
/// records each contended wait into the latency histogram
/// `lock.<name>.contention_us` (the LatencyHistogram* is resolved lazily and
/// CAS-cached, so steady state adds one acquire-load to the slow path only).
class TCVS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Named mutex: contended waits also feed the `lock.<name>.contention_us`
  /// histogram. `name` must be a lowercase dotted literal with static
  /// lifetime (the pointer is stored), e.g. `Mutex mu_{"rpc.serve.execute"}`.
  explicit Mutex(const char* name) : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TCVS_ACQUIRE() {
    if (mu_.try_lock()) return;
    SlowLock();
  }
  void Unlock() TCVS_RELEASE() { mu_.unlock(); }

  /// The wrapped primitive, for CondVar only.
  std::mutex& native() { return mu_; }

  /// The contention-histogram name, or nullptr for an anonymous mutex.
  const char* name() const { return name_; }

 private:
  friend void profiler_internal::RecordCondVarWait(Mutex* mu,
                                                   uint64_t wait_us);

  /// Contended acquisition, out of line in util/profiler.cc. Annotated as
  /// acquiring nothing because the capability bookkeeping happens in Lock().
  void SlowLock() TCVS_NO_THREAD_SAFETY_ANALYSIS;

  std::mutex mu_;
  const char* name_ = nullptr;
  /// Lazily resolved LatencyHistogram* for `lock.<name>.contention_us`
  /// (void* so this header does not depend on metrics.h).
  std::atomic<void*> contention_hist_{nullptr};
};

/// \brief RAII lock over a util::Mutex (Abseil idiom). Scoped-capability
/// annotated: the checker knows the capability is held between construction
/// and destruction, and only there.
class TCVS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TCVS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() TCVS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// \brief Condition variable paired with util::Mutex.
///
/// Wait() takes the Mutex the caller already holds (annotated TCVS_REQUIRES,
/// so calling it without the lock is a compile error under clang). The
/// predicate loop stays at the call site — standard condition-variable
/// discipline.
///
/// When contention profiling is on, every wait's duration is recorded
/// against the waiting callsite in the same per-callsite table as mutex
/// contention: "where threads wait" covers parked-on-a-condition time
/// (group-commit followers, idle serve workers), not just lock handoffs.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks until notified, reacquires.
  void Wait(Mutex* mu) TCVS_REQUIRES(mu) TCVS_NO_THREAD_SAFETY_ANALYSIS {
    const uint64_t start = profiler_internal::ContentionEnabled()
                               ? profiler_internal::ContentionNowUs()
                               : 0;
    std::unique_lock<std::mutex> lock(mu->native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller still owns the mutex, as annotated.
    if (start != 0) {
      profiler_internal::RecordCondVarWait(
          mu, profiler_internal::ContentionNowUs() - start);
    }
  }

  /// Like Wait, but returns false if `timeout_ms` elapsed first.
  bool WaitFor(Mutex* mu, int timeout_ms)
      TCVS_REQUIRES(mu) TCVS_NO_THREAD_SAFETY_ANALYSIS {
    const uint64_t start = profiler_internal::ContentionEnabled()
                               ? profiler_internal::ContentionNowUs()
                               : 0;
    std::unique_lock<std::mutex> lock(mu->native(), std::adopt_lock);
    bool notified = cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms)) ==
                    std::cv_status::no_timeout;
    lock.release();
    if (start != 0) {
      profiler_internal::RecordCondVarWait(
          mu, profiler_internal::ContentionNowUs() - start);
    }
    return notified;
  }

  /// Microsecond-resolution WaitFor — for waits shorter than a millisecond,
  /// like the WAL group-commit window, where ms granularity would round a
  /// ~100 µs batching pause up to 1 ms of added commit latency.
  bool WaitForUs(Mutex* mu, int64_t timeout_us)
      TCVS_REQUIRES(mu) TCVS_NO_THREAD_SAFETY_ANALYSIS {
    const uint64_t start = profiler_internal::ContentionEnabled()
                               ? profiler_internal::ContentionNowUs()
                               : 0;
    std::unique_lock<std::mutex> lock(mu->native(), std::adopt_lock);
    bool notified = cv_.wait_for(lock, std::chrono::microseconds(timeout_us)) ==
                    std::cv_status::no_timeout;
    lock.release();
    if (start != 0) {
      profiler_internal::RecordCondVarWait(
          mu, profiler_internal::ContentionNowUs() - start);
    }
    return notified;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace tcvs
