#pragma once

#include <cstdlib>
#include <optional>
#include <utility>

#include "util/status.h"

namespace tcvs {

/// \brief Value-or-Status, the return type of fallible value-producing
/// functions (Arrow idiom).
///
/// A Result is either *ok* and holds a T, or holds a non-OK Status. Accessing
/// the value of a failed Result aborts, so callers must check `ok()` first or
/// use the TCVS_ASSIGN_OR_RETURN macro.
/// [[nodiscard]] for the same reason as Status: an unexamined Result is a
/// dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK Status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      // A Result constructed from a Status must represent failure.
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The failure Status, or OK when the Result holds a value.
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// \name Value accessors; abort if !ok().
  /// @{
  const T& ValueOrDie() const& {
    DieIfNotOk();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfNotOk();
    return *value_;
  }
  T ValueOrDie() && {
    DieIfNotOk();
    return std::move(*value_);
  }
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  /// @}

  /// Returns the held value or `fallback` when failed.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void DieIfNotOk() const {
    if (!ok()) std::abort();
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace tcvs
