#pragma once

/// \file
/// Clang thread-safety-analysis attribute macros (the Abseil/LLVM idiom).
///
/// When the compiler implements the analysis (`clang -Wthread-safety`), these
/// macros attach capability semantics to types and functions: a mutex is a
/// *capability*, data members are `TCVS_GUARDED_BY` it, and functions declare
/// what they `TCVS_REQUIRES`, `TCVS_ACQUIRE`, or `TCVS_RELEASE`. The checker
/// then proves at compile time that every access to guarded state happens
/// under its lock — removing a MutexLock around annotated server state is a
/// build break, not a TSan report three releases later.
///
/// On compilers without the analysis (GCC) the macros expand to nothing, so
/// annotated code stays portable; the TSan preset remains the dynamic
/// backstop there (see tools/check.sh).

#if defined(__clang__) && defined(__has_attribute)
#define TCVS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define TCVS_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Marks a type as a capability (a lock). `name` is shown in diagnostics.
#define TCVS_CAPABILITY(name) TCVS_THREAD_ANNOTATION_(capability(name))

/// Marks a RAII type whose constructor acquires and destructor releases.
#define TCVS_SCOPED_CAPABILITY TCVS_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define TCVS_GUARDED_BY(x) TCVS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define TCVS_PT_GUARDED_BY(x) TCVS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Caller must hold the capability (exclusively) for the call's duration.
#define TCVS_REQUIRES(...) \
  TCVS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared.
#define TCVS_REQUIRES_SHARED(...) \
  TCVS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define TCVS_ACQUIRE(...) \
  TCVS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability it was holding.
#define TCVS_RELEASE(...) \
  TCVS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Caller must NOT already hold the capability (deadlock prevention).
#define TCVS_EXCLUDES(...) TCVS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Returns a reference to the capability guarding the annotated data.
#define TCVS_RETURN_CAPABILITY(x) TCVS_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: function body is exempt from the analysis (used by the
/// wrappers themselves, whose bodies manipulate the underlying std primitives
/// the checker cannot see through).
#define TCVS_NO_THREAD_SAFETY_ANALYSIS \
  TCVS_THREAD_ANNOTATION_(no_thread_safety_analysis)
