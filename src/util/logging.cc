#include "util/logging.h"

#include "util/status.h"

namespace tcvs {
namespace util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& extra) {
  std::cerr << "[FATAL " << file << ":" << line << "] check failed: " << expr;
  if (!extra.empty()) std::cerr << " — " << extra;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace util
}  // namespace tcvs
