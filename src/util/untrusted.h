#pragma once

#include <type_traits>
#include <utility>

#include "util/taint_annotations.h"

namespace tcvs {
namespace util {

/// \file
/// `Tainted<T>`: a zero-overhead quarantine wrapper for server-originated
/// values. A `Tainted<T>` holds a fully parsed `T` but refuses to become one:
/// there is no implicit conversion, no mutable access, and the only unwrap
/// path is `Endorse()` / `TCVS_ENDORSE`, which demands a *registered verifier
/// token* — a tag type declared next to the cryptographic check that makes
/// the unwrap sound (VO verification, signature verification, consistency
/// proof, envelope check). Forgetting a Verify call no longer compiles.
///
/// Three ways to touch the payload, in decreasing order of preference:
///
///  1. `TCVS_ENDORSE(std::move(t), mtree::VoVerified{})` — unwrap after the
///     corresponding check succeeded. The verifier argument documents *which*
///     check; tools/taint_check.py cross-checks that the token is registered
///     and that an endorser call dominates the unwrap.
///  2. `t.untrusted()` — a const borrow for *inspection only*: routing on a
///     request id, feeding bytes into a verifier, serializing the value back
///     out. Borrowed data must never reach a TCVS_TRUSTED_SINK function;
///     the taint checker flags flows that do ("quarantine pattern": sync/agg
///     pools hold Tainted values and only ever borrow, because the pooled
///     XOR-telescope comparison *is* the verification and no trusted state
///     is derived from the pool).
///  3. `t.raw()` — the escape hatch for the wrapper's own internals. Banned
///     outside this header by tools/lint.py (rule `taint-escape`).
///
/// Registering a verifier token: declare the token struct next to the check
/// it attests and put `TCVS_TAINT_VERIFIER(Name);` in its body. The macro
/// defines the trait tag SFINAE keys on *and* is the registration mark the
/// Python tooling greps for; an `Endorse` call with an unregistered functor
/// fails both the build (no trait tag) and the checker.

/// Trait: V is a registered taint-verifier token (declared with
/// TCVS_TAINT_VERIFIER). Detection-idiom so negative probes in
/// tests/taint_test.cc can static_assert on it.
template <typename V, typename = void>
struct IsRegisteredTaintVerifier : std::false_type {};
template <typename V>
struct IsRegisteredTaintVerifier<
    V, std::void_t<typename V::tcvs_taint_verifier_tag>> : std::true_type {};

/// Put inside a verifier token struct to register it with the taint layer.
/// `Name` must be the struct's own (unqualified) name.
#define TCVS_TAINT_VERIFIER(Name) using tcvs_taint_verifier_tag = Name

/// \brief A `T` that crossed the trust boundary and has not been verified.
///
/// Zero overhead: the wrapper is exactly `sizeof(T)` and every accessor is a
/// trivially inlined reference return. No default construction (a tainted
/// value always comes from somewhere), no implicit conversion to `T`, no
/// mutable access — an attacker-controlled value cannot be patched into
/// shape before verification.
template <typename T>
class Tainted {
 public:
  using value_type = T;

  Tainted() = delete;
  explicit Tainted(T value) : value_(std::move(value)) {}

  Tainted(const Tainted&) = default;
  Tainted(Tainted&&) = default;
  Tainted& operator=(const Tainted&) = default;
  Tainted& operator=(Tainted&&) = default;

  /// Const borrow for inspection/verification only. Deleted on rvalues so a
  /// borrow can never dangle from a temporary
  /// (`Deserialize(b)->untrusted()` does not compile).
  const T& untrusted() const& { return value_; }
  const T& untrusted() && = delete;

  /// Escape hatch for the endorsement machinery below. tools/lint.py bans
  /// `.raw(` outside util/untrusted.h (rule `taint-escape`).
  const T& raw() const& { return value_; }
  T& raw() & { return value_; }

 private:
  T value_;
};

/// \brief Unwraps a tainted value after its check succeeded.
///
/// `verifier` must be a registered token (TCVS_TAINT_VERIFIER); the
/// constraint is SFINAE, not static_assert, so an unregistered functor makes
/// `Endorse` simply not participate in overload resolution — which both
/// hard-stops real code and lets tests probe the negative case with the
/// detection idiom. Takes the Tainted by value: endorsing consumes the
/// quarantined object.
template <typename T, typename V,
          typename = std::enable_if_t<IsRegisteredTaintVerifier<V>::value>>
T Endorse(Tainted<T> value, const V& /*verifier*/) {
  return std::move(value.raw());
}

/// Canonical spelling at endorsement points; greppable by the taint checker.
#define TCVS_ENDORSE(value, verifier) ::tcvs::util::Endorse((value), (verifier))

}  // namespace util
}  // namespace tcvs
