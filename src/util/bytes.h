#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace tcvs {

/// Owning byte string used throughout the library for keys, values, digests
/// and wire messages.
using Bytes = std::vector<uint8_t>;

namespace util {

/// \brief Converts a std::string / string literal to Bytes.
Bytes ToBytes(std::string_view s);

/// \brief Converts Bytes to a std::string (no encoding; bytes copied as-is).
std::string ToString(const Bytes& b);

/// \brief Lowercase hex rendering of a byte string, e.g. "deadbeef".
std::string HexEncode(const Bytes& b);
std::string HexEncode(const uint8_t* data, size_t len);

/// \brief Parses lowercase/uppercase hex into bytes.
/// \return InvalidArgument if `hex` has odd length or non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

/// \brief Appends `src` to `dst`.
void Append(Bytes* dst, const Bytes& src);
void Append(Bytes* dst, std::string_view src);

/// \brief Constant-time byte-string equality (length leaks, contents do not).
bool ConstantTimeEqual(const Bytes& a, const Bytes& b);

}  // namespace util
}  // namespace tcvs
