#include "util/bytes.h"

namespace tcvs {
namespace util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

std::string HexEncode(const uint8_t* data, size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xF]);
  }
  return out;
}

std::string HexEncode(const Bytes& b) { return HexEncode(b.data(), b.size()); }

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in hex string");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void Append(Bytes* dst, const Bytes& src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

void Append(Bytes* dst, std::string_view src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

bool ConstantTimeEqual(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace util
}  // namespace tcvs
