#include "util/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <random>
#include <thread>

#include "util/logging.h"
#include "util/serde.h"

namespace tcvs {
namespace util {

namespace {

/// The thread's active span identity. Maintained by TraceSpan (push on
/// construction, pop on destruction) and ScopedTraceContext (install a
/// remote caller's context). Zero-initialized: code outside any span sees
/// trace_id == 0 and allocates a fresh trace when it opens one.
thread_local SpanContext tls_span_context;

/// The innermost ScopedSpanCollector on this thread (nullptr = none). A
/// single relaxed-cost tls load on the span-destruction path when no
/// collector is installed.
thread_local ScopedSpanCollector* tls_span_collector = nullptr;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Process-unique non-zero ids: a once-seeded random base (so ids from
/// different processes in one trace dump do not collide) mixed through
/// SplitMix64 with a global counter (so ids within the process never do).
uint64_t NewId() {
  static const uint64_t process_seed = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ static_cast<uint64_t>(rd()) ^
           MonotonicMicros();
  }();
  static std::atomic<uint64_t> sequence{0};
  uint64_t id = 0;
  while (id == 0) {
    id = SplitMix64(process_seed ^
                    sequence.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

/// Dots become underscores and everything gets a `tcvs_` prefix, so
/// `rpc.serve.requests_total` exposes as `tcvs_rpc_serve_requests_total` —
/// valid Prometheus metric names without changing the registry's dotted
/// naming scheme.
std::string ExpositionName(const std::string& name) {
  std::string out = "tcvs_";
  out.reserve(out.size() + name.size());
  for (char c : name) out.push_back(c == '.' ? '_' : c);
  return out;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

}  // namespace

SpanContext CurrentSpanContext() { return tls_span_context; }

uint64_t NewTraceId() { return NewId(); }

ScopedTraceContext::ScopedTraceContext(uint64_t trace_id, uint64_t span_id)
    : saved_(tls_span_context) {
  SpanContext remote;
  remote.trace_id = trace_id != 0 ? trace_id : NewId();
  remote.span_id = span_id;
  remote.parent_span_id = 0;
  tls_span_context = remote;
}

ScopedTraceContext::~ScopedTraceContext() { tls_span_context = saved_; }

ScopedSpanCollector::ScopedSpanCollector() : prev_(tls_span_collector) {
  tls_span_collector = this;
}

ScopedSpanCollector::~ScopedSpanCollector() { tls_span_collector = prev_; }

TraceSpan::TraceSpan(const char* name, LatencyHistogram* latency)
    : name_(name),
      latency_(latency),
      start_us_(MonotonicMicros()),
      saved_(tls_span_context) {
  ctx_.trace_id = saved_.trace_id != 0 ? saved_.trace_id : NewId();
  ctx_.span_id = NewId();
  ctx_.parent_span_id = saved_.span_id;
  tls_span_context = ctx_;
}

TraceSpan::~TraceSpan() {
  tls_span_context = saved_;
  const uint64_t duration = MonotonicMicros() - start_us_;
  // The span's own trace id keys the exemplar: the id a /metrics scrape can
  // join against /tracez (ctx_ is already popped, so CurrentSpanContext()
  // would name the parent here).
  latency_->RecordWithExemplar(duration, ctx_.trace_id, start_us_);
  MetricsRegistry& registry = MetricsRegistry::Instance();
  ScopedSpanCollector* collector = tls_span_collector;
  if (registry.trace_enabled() || collector != nullptr) {
    TraceEvent event;
    event.name = name_;
    event.start_us = start_us_;
    event.duration_us = duration;
    event.thread = CurrentThreadHash();
    event.trace_id = ctx_.trace_id;
    event.span_id = ctx_.span_id;
    event.parent_span_id = ctx_.parent_span_id;
    if (collector != nullptr) collector->Add(event);
    if (registry.trace_enabled()) registry.RecordTraceEvent(event);
  }
}

MetricsRegistry& MetricsRegistry::Instance() {
  // Leaked singleton: metric pointers cached in call-site statics must stay
  // valid through every destructor that might still record.
  static MetricsRegistry* const instance = new MetricsRegistry();  // lint:allow-new
  return *instance;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    TCVS_CHECK(gauges_.find(name) == gauges_.end());
    TCVS_CHECK(latencies_.find(name) == latencies_.end());
    it = counters_
             .emplace(std::string(name), std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    TCVS_CHECK(counters_.find(name) == counters_.end());
    TCVS_CHECK(latencies_.find(name) == latencies_.end());
    it = gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetLatency(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = latencies_.find(name);
  if (it == latencies_.end()) {
    TCVS_CHECK(counters_.find(name) == counters_.end());
    TCVS_CHECK(gauges_.find(name) == gauges_.end());
    it = latencies_
             .emplace(std::string(name),
                      std::unique_ptr<LatencyHistogram>(new LatencyHistogram()))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(&mu_);
  // Order matters for cross-metric invariants: histograms (and the counters
  // they pair with) are copied while the registry lock serializes
  // registration, but each value is read individually — a snapshot is a
  // consistent *inventory*, with per-metric values each atomically read.
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, latency] : latencies_) {
    snap.histograms.emplace(name, latency->Snapshot());
    std::vector<Exemplar> exemplars = latency->Exemplars();
    if (!exemplars.empty()) snap.exemplars.emplace(name, std::move(exemplars));
  }
  return snap;
}

std::string MetricsRegistry::TextFormat() const { return Snapshot().TextFormat(); }

void MetricsRegistry::RecordTraceEvent(const TraceEvent& event) {
  MutexLock lock(&trace_mu_);
  if (trace_.size() < trace_capacity_) {
    trace_.push_back(event);
    return;
  }
  trace_[trace_next_] = event;
  trace_next_ = (trace_next_ + 1) % trace_capacity_;
  trace_wrapped_ = true;
}

void MetricsRegistry::set_trace_capacity(size_t capacity) {
  capacity = std::max(kMinTraceCapacity, std::min(kMaxTraceCapacity, capacity));
  MutexLock lock(&trace_mu_);
  trace_capacity_ = capacity;
  trace_.clear();
  trace_.shrink_to_fit();
  trace_next_ = 0;
  trace_wrapped_ = false;
}

size_t MetricsRegistry::trace_capacity() const {
  MutexLock lock(&trace_mu_);
  return trace_capacity_;
}

std::vector<TraceEvent> MetricsRegistry::DrainTrace() {
  MutexLock lock(&trace_mu_);
  std::vector<TraceEvent> out;
  out.reserve(trace_.size());
  if (trace_wrapped_) {
    out.insert(out.end(), trace_.begin() + static_cast<ptrdiff_t>(trace_next_),
               trace_.end());
    out.insert(out.end(), trace_.begin(),
               trace_.begin() + static_cast<ptrdiff_t>(trace_next_));
  } else {
    out = trace_;
  }
  trace_.clear();
  trace_next_ = 0;
  trace_wrapped_ = false;
  return out;
}

void MetricsRegistry::ResetForTesting() {
  {
    MutexLock lock(&mu_);
    for (auto& [name, counter] : counters_) {
      counter->value_.store(0, std::memory_order_relaxed);
    }
    for (auto& [name, gauge] : gauges_) {
      gauge->value_.store(0, std::memory_order_relaxed);
    }
    for (auto& [name, latency] : latencies_) {
      MutexLock hist_lock(&latency->mu_);
      latency->hist_.Reset();
      for (Exemplar& slot : latency->exemplars_) slot = Exemplar{};
    }
  }
  MutexLock lock(&trace_mu_);
  trace_.clear();
  trace_next_ = 0;
  trace_wrapped_ = false;
  trace_capacity_ = kTraceCapacity;
}

namespace {

/// OpenMetrics exemplar suffix for one sample line: the reservoir entry
/// whose value sits closest to the reported quantile, rendered as
/// ` # {trace_id="<16 hex>"} <value> <ts-seconds>` (ts on the process
/// steady clock — exemplars from one scrape are mutually comparable).
void AppendExemplarSuffix(std::string* out, const std::vector<Exemplar>& pool,
                          uint64_t quantile_value) {
  if (pool.empty()) return;
  const Exemplar* best = &pool[0];
  for (const Exemplar& e : pool) {
    const uint64_t best_gap = best->value > quantile_value
                                  ? best->value - quantile_value
                                  : quantile_value - best->value;
    const uint64_t gap = e.value > quantile_value ? e.value - quantile_value
                                                  : quantile_value - e.value;
    if (gap < best_gap) best = &e;
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                " # {trace_id=\"%016" PRIx64 "\"} %" PRIu64 " %.6f",
                best->trace_id, best->value,
                static_cast<double>(best->ts_us) / 1e6);
  *out += buf;
}

}  // namespace

std::string MetricsSnapshot::TextFormat() const {
  static const std::vector<Exemplar> kNoExemplars;
  std::string out;
  for (const auto& [name, value] : counters) {
    std::string n = ExpositionName(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " ";
    AppendU64(&out, value);
    out.push_back('\n');
  }
  for (const auto& [name, value] : gauges) {
    std::string n = ExpositionName(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " ";
    AppendI64(&out, static_cast<int64_t>(value));
    out.push_back('\n');
  }
  for (const auto& [name, hist] : histograms) {
    std::string n = ExpositionName(name);
    auto ex_it = exemplars.find(name);
    const std::vector<Exemplar>& pool =
        ex_it == exemplars.end() ? kNoExemplars : ex_it->second;
    out += "# TYPE " + n + " summary\n";
    for (double q : {0.5, 0.9, 0.99}) {
      // %g, not a fixed precision: a future 0.999 must render distinctly
      // ("0.999", never rounded into a duplicate "1" label — promcheck
      // rejects duplicate quantile labels within a family).
      char label[32];
      std::snprintf(label, sizeof(label), "{quantile=\"%g\"} ", q);
      const uint64_t value = hist.Quantile(q);
      out += n + label;
      AppendU64(&out, value);
      AppendExemplarSuffix(&out, pool, value);
      out.push_back('\n');
    }
    out += n + "_sum ";
    AppendU64(&out, hist.sum());
    out.push_back('\n');
    out += n + "_count ";
    AppendU64(&out, hist.count());
    out.push_back('\n');
  }
  return out;
}

std::string MetricsSnapshot::JsonFormat() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendU64(&out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendI64(&out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"count\":";
    AppendU64(&out, hist.count());
    out += ",\"sum\":";
    AppendU64(&out, hist.sum());
    out += ",\"min\":";
    AppendU64(&out, hist.min());
    out += ",\"max\":";
    AppendU64(&out, hist.max());
    char mean[32];
    std::snprintf(mean, sizeof(mean), ",\"mean\":%.2f", hist.mean());
    out += mean;
    out += ",\"p50\":";
    AppendU64(&out, hist.p50());
    out += ",\"p90\":";
    AppendU64(&out, hist.p90());
    out += ",\"p99\":";
    AppendU64(&out, hist.p99());
    out.push_back('}');
  }
  out += "},\"exemplars\":{";
  first = true;
  for (const auto& [name, pool] : exemplars) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out += ":[";
    bool first_ex = true;
    for (const Exemplar& e : pool) {
      if (!first_ex) out.push_back(',');
      first_ex = false;
      out += "{\"value\":";
      AppendU64(&out, e.value);
      // 64-bit ids as 16-hex-digit strings, same as the trace dump.
      char id[32];
      std::snprintf(id, sizeof(id), ",\"trace_id\":\"%016" PRIx64 "\"",
                    e.trace_id);
      out += id;
      out += ",\"ts_us\":";
      AppendU64(&out, e.ts_us);
      out += ",\"bucket\":";
      AppendU64(&out, e.bucket);
      out.push_back('}');
    }
    out.push_back(']');
  }
  out += "}}";
  return out;
}

Bytes MetricsSnapshot::Serialize() const {
  Writer w;
  w.PutU32(static_cast<uint32_t>(counters.size()));
  for (const auto& [name, value] : counters) {
    w.PutString(name);
    w.PutU64(value);
  }
  w.PutU32(static_cast<uint32_t>(gauges.size()));
  for (const auto& [name, value] : gauges) {
    w.PutString(name);
    w.PutU64(static_cast<uint64_t>(value));
  }
  w.PutU32(static_cast<uint32_t>(histograms.size()));
  for (const auto& [name, hist] : histograms) {
    w.PutString(name);
    hist.SerializeTo(&w);
  }
  // Exemplar section, appended last: pre-exemplar readers stop after the
  // histograms and tolerate these trailing bytes, so the wire stays
  // compatible in both directions (see Deserialize).
  w.PutU32(static_cast<uint32_t>(exemplars.size()));
  for (const auto& [name, pool] : exemplars) {
    w.PutString(name);
    w.PutU32(static_cast<uint32_t>(pool.size()));
    for (const Exemplar& e : pool) {
      w.PutU64(e.value);
      w.PutU64(e.trace_id);
      w.PutU64(e.ts_us);
      w.PutU32(e.bucket);
    }
  }
  return w.Take();
}

Result<MetricsSnapshot> MetricsSnapshot::Deserialize(const Bytes& data) {
  constexpr uint32_t kMaxMetrics = 1u << 16;  // Cap a malicious snapshot.
  Reader r(data);
  MetricsSnapshot snap;
  TCVS_ASSIGN_OR_RETURN(uint32_t n_counters, r.GetU32());
  if (n_counters > kMaxMetrics) return Status::InvalidArgument("too many counters");
  for (uint32_t i = 0; i < n_counters; ++i) {
    TCVS_ASSIGN_OR_RETURN(std::string name, r.GetString());
    TCVS_ASSIGN_OR_RETURN(uint64_t value, r.GetU64());
    snap.counters.emplace(std::move(name), value);
  }
  TCVS_ASSIGN_OR_RETURN(uint32_t n_gauges, r.GetU32());
  if (n_gauges > kMaxMetrics) return Status::InvalidArgument("too many gauges");
  for (uint32_t i = 0; i < n_gauges; ++i) {
    TCVS_ASSIGN_OR_RETURN(std::string name, r.GetString());
    TCVS_ASSIGN_OR_RETURN(uint64_t value, r.GetU64());
    snap.gauges.emplace(std::move(name), static_cast<int64_t>(value));
  }
  TCVS_ASSIGN_OR_RETURN(uint32_t n_hists, r.GetU32());
  if (n_hists > kMaxMetrics) return Status::InvalidArgument("too many histograms");
  for (uint32_t i = 0; i < n_hists; ++i) {
    TCVS_ASSIGN_OR_RETURN(std::string name, r.GetString());
    TCVS_ASSIGN_OR_RETURN(Histogram hist, Histogram::DeserializeFrom(&r));
    snap.histograms.emplace(std::move(name), std::move(hist));
  }
  // Pre-exemplar senders end here; treat a missing section as empty.
  if (r.AtEnd()) return snap;
  TCVS_ASSIGN_OR_RETURN(uint32_t n_exemplars, r.GetU32());
  if (n_exemplars > kMaxMetrics) {
    return Status::InvalidArgument("too many exemplar sets");
  }
  for (uint32_t i = 0; i < n_exemplars; ++i) {
    TCVS_ASSIGN_OR_RETURN(std::string name, r.GetString());
    TCVS_ASSIGN_OR_RETURN(uint32_t n_pool, r.GetU32());
    if (n_pool > LatencyHistogram::kExemplarSlots) {
      return Status::InvalidArgument("oversized exemplar reservoir");
    }
    std::vector<Exemplar> pool;
    pool.reserve(n_pool);
    for (uint32_t j = 0; j < n_pool; ++j) {
      Exemplar e;
      TCVS_ASSIGN_OR_RETURN(e.value, r.GetU64());
      TCVS_ASSIGN_OR_RETURN(e.trace_id, r.GetU64());
      TCVS_ASSIGN_OR_RETURN(e.ts_us, r.GetU64());
      TCVS_ASSIGN_OR_RETURN(e.bucket, r.GetU32());
      pool.push_back(e);
    }
    snap.exemplars.emplace(std::move(name), std::move(pool));
  }
  return snap;
}

TraceDump TraceDump::FromEvents(const std::vector<TraceEvent>& events) {
  TraceDump dump;
  dump.events.reserve(events.size());
  for (const TraceEvent& in : events) {
    Event out;
    out.name = in.name != nullptr ? in.name : "";
    out.start_us = in.start_us;
    out.duration_us = in.duration_us;
    out.thread = in.thread;
    out.trace_id = in.trace_id;
    out.span_id = in.span_id;
    out.parent_span_id = in.parent_span_id;
    dump.events.push_back(std::move(out));
  }
  return dump;
}

namespace {

void AppendHexId(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"%016" PRIx64 "\"", v);
  *out += buf;
}

}  // namespace

std::string TraceDump::ChromeTraceJson() const {
  std::vector<const Event*> sorted;
  sorted.reserve(events.size());
  for (const Event& e : events) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event* a, const Event* b) {
                     return a->start_us < b->start_us;
                   });
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Event* e : sorted) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, e->name);
    out += ",\"cat\":\"tcvs\",\"ph\":\"X\",\"ts\":";
    AppendU64(&out, e->start_us);
    out += ",\"dur\":";
    AppendU64(&out, e->duration_us);
    out += ",\"pid\":1,\"tid\":";
    AppendU64(&out, e->thread);
    out += ",\"args\":{\"trace_id\":";
    AppendHexId(&out, e->trace_id);
    out += ",\"span_id\":";
    AppendHexId(&out, e->span_id);
    out += ",\"parent_span_id\":";
    AppendHexId(&out, e->parent_span_id);
    out += "}}";
  }
  out += "]}";
  return out;
}

Bytes TraceDump::Serialize() const {
  Writer w;
  w.PutU8(1);  // TraceDump wire version.
  w.PutU32(static_cast<uint32_t>(events.size()));
  for (const Event& e : events) {
    w.PutString(e.name);
    w.PutU64(e.start_us);
    w.PutU64(e.duration_us);
    w.PutU32(e.thread);
    w.PutU64(e.trace_id);
    w.PutU64(e.span_id);
    w.PutU64(e.parent_span_id);
  }
  return w.Take();
}

Result<TraceDump> TraceDump::Deserialize(const Bytes& data) {
  Reader r(data);
  TCVS_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != 1) {
    return Status::InvalidArgument("unsupported trace dump version");
  }
  TCVS_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  if (count > MetricsRegistry::kMaxTraceCapacity) {
    return Status::InvalidArgument("trace dump too large");
  }
  TraceDump dump;
  dump.events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Event e;
    TCVS_ASSIGN_OR_RETURN(e.name, r.GetString());
    TCVS_ASSIGN_OR_RETURN(e.start_us, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(e.duration_us, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(e.thread, r.GetU32());
    TCVS_ASSIGN_OR_RETURN(e.trace_id, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(e.span_id, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(e.parent_span_id, r.GetU64());
    dump.events.push_back(std::move(e));
  }
  return dump;
}

uint64_t MonotonicMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t TraceSpan::CurrentThreadHash() {
  return static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace util
}  // namespace tcvs
