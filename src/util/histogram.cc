#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "util/serde.h"

namespace tcvs {
namespace util {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

size_t Histogram::BucketFor(uint64_t value) {
  // Values 0..3 map to their own buckets; beyond that, 4 sub-buckets per
  // power of two: bucket = 4*floor(log2(v)) + top-2-bits-after-msb.
  if (value < 4) return static_cast<size_t>(value);
  int msb = 63 - std::countl_zero(value);
  uint64_t sub = (value >> (msb - 2)) & 0x3;  // Two bits below the MSB.
  size_t bucket = static_cast<size_t>(4 * msb) + static_cast<size_t>(sub);
  return std::min(bucket, kBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(size_t bucket) {
  if (bucket < 4) return bucket;
  size_t msb = bucket / 4;
  uint64_t sub = bucket % 4;
  // Largest value whose (msb, sub) matches: next sub-bucket start − 1.
  uint64_t base = 1ull << msb;
  uint64_t step = base / 4;
  return base + step * (sub + 1) - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)] += 1;
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram Histogram::DeltaSince(const Histogram& earlier) const {
  Histogram delta;
  // A total count that moved backwards means the counter was reset between
  // the two snapshots (server restart between polls): the interval is
  // unknowable, so report it as empty rather than per-bucket underflow
  // garbage (the next poll pair is coherent again).
  if (count_ < earlier.count_) return delta;
  size_t lowest = kBuckets;
  size_t highest = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t d =
        buckets_[i] > earlier.buckets_[i] ? buckets_[i] - earlier.buckets_[i]
                                          : 0;
    if (d == 0) continue;
    delta.buckets_[i] = d;
    delta.count_ += d;
    lowest = std::min(lowest, i);
    highest = std::max(highest, i);
  }
  delta.sum_ = sum_ > earlier.sum_ ? sum_ - earlier.sum_ : 0;
  if (delta.count_ > 0) {
    // The true interval extremes are unrecoverable; use the differenced
    // buckets' bounds so Quantile's clamp stays consistent with the mass.
    delta.min_ = lowest == 0 ? 0 : BucketUpperBound(lowest - 1) + 1;
    delta.max_ = BucketUpperBound(highest);
  }
  return delta;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

uint64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Continuous rank in [0, count]; the containing bucket is the first whose
  // cumulative count reaches it. Returning the bucket's upper bound would
  // bias every quantile upward by up to the bucket width (25% relative), so
  // interpolate linearly across the bucket span instead.
  const double rank = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const uint64_t before = seen;
    seen += buckets_[i];
    if (static_cast<double>(seen) < rank) continue;
    const uint64_t lower = i == 0 ? 0 : BucketUpperBound(i - 1);
    const uint64_t upper = BucketUpperBound(i);
    const double frac =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets_[i]);
    const double width = static_cast<double>(upper - lower);
    const uint64_t value =
        lower + static_cast<uint64_t>(std::llround(frac * width));
    return std::clamp(value, min_, max_);
  }
  return max_;
}

void Histogram::SerializeTo(Writer* w) const {
  w->PutU64(count_);
  w->PutU64(sum_);
  w->PutU64(min_);
  w->PutU64(max_);
  uint32_t nonzero = 0;
  for (size_t i = 0; i < kBuckets; ++i) nonzero += buckets_[i] != 0;
  w->PutU32(nonzero);
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    w->PutU32(static_cast<uint32_t>(i));
    w->PutU64(buckets_[i]);
  }
}

Result<Histogram> Histogram::DeserializeFrom(Reader* r) {
  Histogram h;
  TCVS_ASSIGN_OR_RETURN(h.count_, r->GetU64());
  TCVS_ASSIGN_OR_RETURN(h.sum_, r->GetU64());
  TCVS_ASSIGN_OR_RETURN(h.min_, r->GetU64());
  TCVS_ASSIGN_OR_RETURN(h.max_, r->GetU64());
  TCVS_ASSIGN_OR_RETURN(uint32_t nonzero, r->GetU32());
  if (nonzero > kBuckets) return Status::InvalidArgument("bad histogram");
  uint64_t total = 0;
  for (uint32_t i = 0; i < nonzero; ++i) {
    TCVS_ASSIGN_OR_RETURN(uint32_t bucket, r->GetU32());
    TCVS_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
    if (bucket >= kBuckets) return Status::InvalidArgument("bad bucket index");
    h.buckets_[bucket] = n;
    total += n;
  }
  if (total != h.count_) {
    return Status::InvalidArgument("histogram bucket counts disagree");
  }
  return h;
}

std::string Histogram::Summary() const {
  char buf[160];
  snprintf(buf, sizeof(buf),
           "count=%llu mean=%.2f p50=%llu p90=%llu p99=%llu max=%llu",
           static_cast<unsigned long long>(count_), mean(),
           static_cast<unsigned long long>(p50()),
           static_cast<unsigned long long>(p90()),
           static_cast<unsigned long long>(p99()),
           static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace util
}  // namespace tcvs
