#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tcvs {
namespace util {

/// \brief Fixed-memory latency histogram with exponential buckets (powers of
/// two with 4 sub-buckets each, HdrHistogram-lite). Records values in
/// arbitrary units; quantiles are approximate to the bucket width (≤ 25%
/// relative error), which is plenty for round-count latencies.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  /// Value at quantile q ∈ [0, 1] (upper bound of the containing bucket).
  uint64_t Quantile(double q) const;
  uint64_t p50() const { return Quantile(0.50); }
  uint64_t p90() const { return Quantile(0.90); }
  uint64_t p99() const { return Quantile(0.99); }

  /// "count=… mean=… p50=… p90=… p99=… max=…" one-liner for reports.
  std::string Summary() const;

 private:
  static size_t BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(size_t bucket);

  static constexpr size_t kBuckets = 4 * 64 + 1;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
};

}  // namespace util
}  // namespace tcvs
