#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace tcvs {
namespace util {

class Reader;
class Writer;

/// \brief Fixed-memory latency histogram with exponential buckets (powers of
/// two with 4 sub-buckets each, HdrHistogram-lite). Records values in
/// arbitrary units; quantiles are approximate to the bucket width (the
/// reported value is linearly interpolated within the containing bucket, so
/// the error is bounded by the bucket width and carries no systematic upward
/// bias), which is plenty for round-count and microsecond latencies.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  /// Per-bucket difference `this − earlier` (clamped at zero), for interval
  /// quantiles between two cumulative snapshots of the same metric (powers
  /// `tcvs top`). min()/max() of the result are the bucket bounds of the
  /// differenced mass — the exact extremes of the interval are not
  /// recoverable from two cumulative snapshots.
  Histogram DeltaSince(const Histogram& earlier) const;

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  /// Value at quantile q ∈ [0, 1], linearly interpolated within the
  /// containing bucket and clamped to [min(), max()].
  uint64_t Quantile(double q) const;
  uint64_t p50() const { return Quantile(0.50); }
  uint64_t p90() const { return Quantile(0.90); }
  uint64_t p99() const { return Quantile(0.99); }

  /// "count=… mean=… p50=… p90=… p99=… max=…" one-liner for reports.
  std::string Summary() const;

  /// \name Wire form (sparse bucket encoding), for metrics snapshots.
  /// @{
  void SerializeTo(Writer* w) const;
  static Result<Histogram> DeserializeFrom(Reader* r);
  /// @}

  /// Bucket index a value lands in (exposed for exemplar slotting — the
  /// metrics layer keys latency exemplars by the bucket of their sample).
  static size_t BucketFor(uint64_t value);

 private:
  static uint64_t BucketUpperBound(size_t bucket);

  static constexpr size_t kBuckets = 4 * 64 + 1;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
};

}  // namespace util
}  // namespace tcvs
