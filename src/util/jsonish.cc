#include "util/jsonish.h"

#include <cctype>
#include <cstdlib>

namespace tcvs {
namespace util {

namespace {

constexpr size_t kMaxDepth = 64;  // Bounds recursion on hostile input.

}  // namespace

/// Recursive-descent cursor over the document. One instance per parse.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    TCVS_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing garbage");
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error("unexpected character");
  }

  Result<JsonValue> ParseObject(size_t depth) {
    ++pos_;  // '{'
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return v;
    for (;;) {
      SkipWhitespace();
      TCVS_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      TCVS_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
      v.object_.emplace(std::move(key.string_), std::move(member));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(size_t depth) {
    ++pos_;  // '['
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return v;
    for (;;) {
      TCVS_ASSIGN_OR_RETURN(JsonValue element, ParseValue(depth + 1));
      v.array_.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return v;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        v.string_.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string_.push_back('"'); break;
        case '\\': v.string_.push_back('\\'); break;
        case '/': v.string_.push_back('/'); break;
        case 'b': v.string_.push_back('\b'); break;
        case 'f': v.string_.push_back('\f'); break;
        case 'n': v.string_.push_back('\n'); break;
        case 'r': v.string_.push_back('\r'); break;
        case 't': v.string_.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // stitched — our emitters only \u-escape control characters).
          if (code < 0x80) {
            v.string_.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            v.string_.push_back(static_cast<char>(0xC0 | (code >> 6)));
            v.string_.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            v.string_.push_back(static_cast<char>(0xE0 | (code >> 12)));
            v.string_.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            v.string_.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.bool_ = true;
      pos_ += 4;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      v.bool_ = false;
      pos_ += 5;
      return v;
    }
    return Error("bad literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") != 0) return Error("bad literal");
    pos_ += 4;
    return JsonValue();
  }

  bool AtDigit() const {
    return pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]));
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    (void)Consume('-');
    while (AtDigit()) ++pos_;
    if (Consume('.')) {
      while (AtDigit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (AtDigit()) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return Error("bad number");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = parsed;
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace util
}  // namespace tcvs
