#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace tcvs {
namespace crypto {

/// \brief HMAC-SHA256 (RFC 2104) over `msg` with `key`.
Digest HmacSha256(const Bytes& key, const Bytes& msg);

/// \brief Deterministic PRF used to expand seeds into key material:
/// PRF(seed, index) = HMAC-SHA256(seed, LE64(index)).
///
/// All one-time-signature secret chains are derived this way so a signer's
/// entire key state is a 32-byte seed (bounded local state, paper §2.2.5).
Digest Prf(const Bytes& seed, uint64_t index);

/// \brief Two-index PRF: PRF(seed, a, b) = HMAC(seed, LE64(a) ‖ LE64(b)).
Digest Prf2(const Bytes& seed, uint64_t a, uint64_t b);

}  // namespace crypto
}  // namespace tcvs
