#include "crypto/merkle_sig.h"

#include "crypto/hmac.h"
#include "util/serde.h"

namespace tcvs {
namespace crypto {

namespace {
// Domain-separation tag for per-leaf seeds ("mss\0").
constexpr uint64_t kMssDomain = 0x6d7373ULL;

Digest LeafFromWotsPk(const Bytes& wots_pk) {
  // Domain-separated: leaf = H(0x00 ‖ pk); internal = H(0x01 ‖ l ‖ r).
  Sha256 h;
  uint8_t tag = 0x00;
  h.Update(&tag, 1);
  h.Update(wots_pk);
  return h.Finish();
}

Digest InternalNode(const Digest& l, const Digest& r) {
  Sha256 h;
  uint8_t tag = 0x01;
  h.Update(&tag, 1);
  h.Update(l);
  h.Update(r);
  return h.Finish();
}
}  // namespace

Bytes MerkleSigner::LeafSeed(uint64_t leaf) const {
  return Prf2(seed_, kMssDomain, leaf);
}

MerkleSigner::MerkleSigner(const Bytes& seed, int height, WotsParams params)
    : seed_(seed), height_(height), params_(params) {
  const uint64_t n_leaves = 1ULL << height_;
  levels_.resize(height_ + 1);
  levels_[0].reserve(n_leaves);
  for (uint64_t i = 0; i < n_leaves; ++i) {
    WinternitzSigner wots(LeafSeed(i), params_);
    levels_[0].push_back(LeafFromWotsPk(wots.public_key()));
  }
  for (int lvl = 1; lvl <= height_; ++lvl) {
    const auto& below = levels_[lvl - 1];
    levels_[lvl].reserve(below.size() / 2);
    for (size_t i = 0; i + 1 < below.size(); i += 2) {
      levels_[lvl].push_back(InternalNode(below[i], below[i + 1]));
    }
  }
  root_ = levels_[height_][0];
}

Result<Bytes> MerkleSigner::Sign(const Bytes& message) {
  const uint64_t n_leaves = 1ULL << height_;
  if (next_leaf_ >= n_leaves) {
    return Status::FailedPrecondition("MSS key exhausted after " +
                                      std::to_string(n_leaves) + " signatures");
  }
  const uint64_t leaf = next_leaf_++;
  WinternitzSigner wots(LeafSeed(leaf), params_);
  TCVS_ASSIGN_OR_RETURN(Bytes wots_sig, wots.Sign(message));

  util::Writer w;
  w.PutU8(static_cast<uint8_t>(params_.w));
  w.PutU64(leaf);
  w.PutBytes(wots_sig);
  // Authentication path: sibling at every level.
  uint64_t idx = leaf;
  for (int lvl = 0; lvl < height_; ++lvl) {
    uint64_t sibling = idx ^ 1;
    w.PutRaw(levels_[lvl][sibling]);
    idx >>= 1;
  }
  return w.Take();
}

Result<MerkleSigner::PreparedSignature> MerkleSigner::Prepare(
    const Bytes& signature) {
  util::Reader r(signature);
  TCVS_ASSIGN_OR_RETURN(uint8_t wparam, r.GetU8());
  if (wparam != 1 && wparam != 2 && wparam != 4 && wparam != 8) {
    return Status::InvalidArgument("unsupported Winternitz parameter in signature");
  }
  PreparedSignature prepared;
  prepared.params = WotsParams{.w = wparam};
  TCVS_ASSIGN_OR_RETURN(prepared.leaf, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(prepared.wots_sig, r.GetBytes());
  // Remaining bytes are the auth path; length tells us the tree height.
  if (r.remaining() % kDigestSize != 0) {
    return Status::InvalidArgument("malformed MSS authentication path");
  }
  prepared.height = r.remaining() / kDigestSize;
  if (prepared.height > 63) {
    return Status::InvalidArgument("MSS tree height too large");
  }
  if (prepared.leaf >= (1ULL << prepared.height)) {
    return Status::InvalidArgument("MSS leaf index out of range for tree height");
  }
  TCVS_ASSIGN_OR_RETURN(prepared.auth_path,
                        r.GetRaw(prepared.height * kDigestSize));
  return prepared;
}

Status MerkleSigner::FinishVerify(const Bytes& public_key,
                                  const PreparedSignature& prepared,
                                  const Bytes& wots_pk) {
  if (public_key.size() != kDigestSize) {
    return Status::InvalidArgument("MSS public key must be 32 bytes");
  }
  Digest node = LeafFromWotsPk(wots_pk);
  uint64_t idx = prepared.leaf;
  for (size_t lvl = 0; lvl < prepared.height; ++lvl) {
    Digest sibling(prepared.auth_path.begin() + lvl * kDigestSize,
                   prepared.auth_path.begin() + (lvl + 1) * kDigestSize);
    node = (idx & 1) ? InternalNode(sibling, node) : InternalNode(node, sibling);
    idx >>= 1;
  }
  if (!util::ConstantTimeEqual(node, public_key)) {
    return Status::VerificationFailure("MSS root mismatch");
  }
  return Status::OK();
}

Status MerkleSigner::VerifySignature(const Bytes& public_key,
                                     const Bytes& message, const Bytes& signature) {
  TCVS_ASSIGN_OR_RETURN(PreparedSignature prepared, Prepare(signature));
  TCVS_ASSIGN_OR_RETURN(Bytes wots_pk,
                        WinternitzSigner::PublicKeyFromSignature(
                            message, prepared.wots_sig, prepared.params));
  return FinishVerify(public_key, prepared, wots_pk);
}

}  // namespace crypto
}  // namespace tcvs
