#include "crypto/translog.h"

namespace tcvs {
namespace crypto {

namespace {

Digest HashChildren(const Digest& left, const Digest& right) {
  Sha256 h;
  uint8_t tag = 0x01;
  h.Update(&tag, 1);
  h.Update(left);
  h.Update(right);
  return h.Finish();
}

// Largest power of two strictly less than n (n ≥ 2).
uint64_t SplitPoint(uint64_t n) {
  uint64_t k = 1;
  while (k * 2 < n) k *= 2;
  return k;
}

Digest EmptyRoot() { return Sha256::Hash(""); }

}  // namespace

Digest TransparencyLog::LeafHash(const Bytes& entry) {
  Sha256 h;
  uint8_t tag = 0x00;
  h.Update(&tag, 1);
  h.Update(entry);
  return h.Finish();
}

uint64_t TransparencyLog::Append(const Bytes& entry) {
  leaves_.push_back(LeafHash(entry));
  return leaves_.size() - 1;
}

Digest TransparencyLog::SubtreeRoot(uint64_t lo, uint64_t hi) const {
  const uint64_t n = hi - lo;
  if (n == 0) return EmptyRoot();
  if (n == 1) return leaves_[lo];
  uint64_t k = SplitPoint(n);
  return HashChildren(SubtreeRoot(lo, lo + k), SubtreeRoot(lo + k, hi));
}

Digest TransparencyLog::Root() const { return SubtreeRoot(0, leaves_.size()); }

Result<Digest> TransparencyLog::RootAt(uint64_t n) const {
  if (n > leaves_.size()) return Status::InvalidArgument("RootAt past log size");
  return SubtreeRoot(0, n);
}

void TransparencyLog::SubtreeInclusion(uint64_t index, uint64_t lo, uint64_t hi,
                                       std::vector<Digest>* proof) const {
  const uint64_t n = hi - lo;
  if (n == 1) return;
  uint64_t k = SplitPoint(n);
  if (index < k) {
    SubtreeInclusion(index, lo, lo + k, proof);
    proof->push_back(SubtreeRoot(lo + k, hi));
  } else {
    SubtreeInclusion(index - k, lo + k, hi, proof);
    proof->push_back(SubtreeRoot(lo, lo + k));
  }
}

Result<std::vector<Digest>> TransparencyLog::InclusionProof(uint64_t index,
                                                            uint64_t n) const {
  if (n > leaves_.size()) return Status::InvalidArgument("proof past log size");
  if (index >= n) return Status::InvalidArgument("index outside the log");
  std::vector<Digest> proof;
  SubtreeInclusion(index, 0, n, &proof);
  return proof;
}

void TransparencyLog::SubtreeConsistency(uint64_t m, uint64_t lo, uint64_t hi,
                                         bool lo_is_old,
                                         std::vector<Digest>* proof) const {
  const uint64_t n = hi - lo;
  if (m == n) {
    if (!lo_is_old) proof->push_back(SubtreeRoot(lo, hi));
    return;
  }
  uint64_t k = SplitPoint(n);
  if (m <= k) {
    SubtreeConsistency(m, lo, lo + k, lo_is_old, proof);
    proof->push_back(SubtreeRoot(lo + k, hi));
  } else {
    SubtreeConsistency(m - k, lo + k, hi, false, proof);
    proof->push_back(SubtreeRoot(lo, lo + k));
  }
}

Result<std::vector<Digest>> TransparencyLog::ConsistencyProof(uint64_t m,
                                                              uint64_t n) const {
  if (n > leaves_.size()) return Status::InvalidArgument("proof past log size");
  if (m > n) return Status::InvalidArgument("old size exceeds new size");
  std::vector<Digest> proof;
  if (m == 0 || m == n) return proof;  // Trivial cases need no proof.
  SubtreeConsistency(m, 0, n, /*lo_is_old=*/true, &proof);
  return proof;
}

Status TransparencyLog::VerifyInclusion(const Bytes& entry, uint64_t index,
                                        uint64_t n, const Digest& root,
                                        const std::vector<Digest>& proof) {
  if (index >= n) return Status::InvalidArgument("index outside the log");
  uint64_t fn = index;
  uint64_t sn = n - 1;
  Digest r = LeafHash(entry);
  for (const Digest& p : proof) {
    if (p.size() != kDigestSize) {
      return Status::InvalidArgument("malformed proof digest");
    }
    if (sn == 0) return Status::VerificationFailure("inclusion proof too long");
    if ((fn & 1) == 1 || fn == sn) {
      r = HashChildren(p, r);
      if ((fn & 1) == 0) {
        // Right-border node: climb until the path turns left.
        while (fn != 0 && (fn & 1) == 0) {
          fn >>= 1;
          sn >>= 1;
        }
      }
    } else {
      r = HashChildren(r, p);
    }
    fn >>= 1;
    sn >>= 1;
  }
  if (sn != 0) return Status::VerificationFailure("inclusion proof too short");
  if (r != root) {
    return Status::VerificationFailure("inclusion proof root mismatch");
  }
  return Status::OK();
}

Status TransparencyLog::VerifyConsistency(uint64_t m, uint64_t n,
                                          const Digest& old_root,
                                          const Digest& new_root,
                                          const std::vector<Digest>& proof) {
  if (m > n) return Status::InvalidArgument("old size exceeds new size");
  if (m == n) {
    if (!proof.empty()) {
      return Status::VerificationFailure("nonempty proof for equal sizes");
    }
    if (old_root != new_root) {
      return Status::VerificationFailure("equal sizes but different roots");
    }
    return Status::OK();
  }
  if (m == 0) {
    // Any log extends the empty log; the old root must be the empty root.
    if (!proof.empty()) {
      return Status::VerificationFailure("nonempty proof from empty log");
    }
    if (old_root != EmptyRoot()) {
      return Status::VerificationFailure("bad empty-log root");
    }
    return Status::OK();
  }

  uint64_t node = m - 1;
  uint64_t last = n - 1;
  while ((node & 1) == 1) {
    node >>= 1;
    last >>= 1;
  }
  size_t idx = 0;
  Digest new_hash, old_hash;
  if (node != 0) {
    if (proof.empty()) {
      return Status::VerificationFailure("consistency proof too short");
    }
    new_hash = old_hash = proof[idx++];
  } else {
    new_hash = old_hash = old_root;
  }
  for (; idx < proof.size(); ++idx) {
    const Digest& p = proof[idx];
    if (p.size() != kDigestSize) {
      return Status::InvalidArgument("malformed proof digest");
    }
    if (last == 0) {
      return Status::VerificationFailure("consistency proof too long");
    }
    if ((node & 1) == 1 || node == last) {
      old_hash = HashChildren(p, old_hash);
      new_hash = HashChildren(p, new_hash);
      if ((node & 1) == 0) {
        while (node != 0 && (node & 1) == 0) {
          node >>= 1;
          last >>= 1;
        }
      }
    } else {
      new_hash = HashChildren(new_hash, p);
    }
    node >>= 1;
    last >>= 1;
  }
  if (last != 0) return Status::VerificationFailure("consistency proof too short");
  if (old_hash != old_root) {
    return Status::VerificationFailure("consistency proof old-root mismatch");
  }
  if (new_hash != new_root) {
    return Status::VerificationFailure("consistency proof new-root mismatch");
  }
  return Status::OK();
}

}  // namespace crypto
}  // namespace tcvs
