#pragma once

#include <memory>
#include <string>

#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tcvs {
namespace crypto {

/// Identifies a signature scheme on the wire.
enum class SchemeId : uint8_t {
  kLamport = 1,
  kWinternitz = 2,
  kMerkleSig = 3,
};

std::string_view SchemeIdToString(SchemeId id);

/// \brief A signing key. Hash-based schemes are *stateful*: each Sign call
/// may consume a one-time key, so Sign is non-const and can fail with
/// FailedPrecondition once the key is exhausted.
class Signer {
 public:
  virtual ~Signer() = default;

  /// Signs `message` (arbitrary length; schemes hash it internally).
  virtual Result<Bytes> Sign(const Bytes& message) = 0;

  /// Serialized public key for distribution / certificates.
  virtual const Bytes& public_key() const = 0;

  virtual SchemeId scheme() const = 0;

  /// How many more messages this key can sign (one-time keys return 1 or 0;
  /// many-time keys return the remaining leaf count).
  virtual uint64_t remaining_signatures() const = 0;
};

/// \brief Verifies `signature` over `message` under `public_key` for the
/// scheme identified by `scheme`.
///
/// \return OK if valid; VerificationFailure if the signature does not verify;
///         InvalidArgument if the signature is malformed.
Status Verify(SchemeId scheme, const Bytes& public_key, const Bytes& message,
              const Bytes& signature);

}  // namespace crypto
}  // namespace tcvs
