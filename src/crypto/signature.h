#pragma once

#include <memory>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tcvs {
namespace crypto {

/// Identifies a signature scheme on the wire.
enum class SchemeId : uint8_t {
  kLamport = 1,
  kWinternitz = 2,
  kMerkleSig = 3,
};

std::string_view SchemeIdToString(SchemeId id);

/// \brief A signing key. Hash-based schemes are *stateful*: each Sign call
/// may consume a one-time key, so Sign is non-const and can fail with
/// FailedPrecondition once the key is exhausted.
class Signer {
 public:
  virtual ~Signer() = default;

  /// Signs `message` (arbitrary length; schemes hash it internally).
  virtual Result<Bytes> Sign(const Bytes& message) = 0;

  /// Serialized public key for distribution / certificates.
  virtual const Bytes& public_key() const = 0;

  virtual SchemeId scheme() const = 0;

  /// How many more messages this key can sign (one-time keys return 1 or 0;
  /// many-time keys return the remaining leaf count).
  virtual uint64_t remaining_signatures() const = 0;
};

/// \brief Verifies `signature` over `message` under `public_key` for the
/// scheme identified by `scheme`.
///
/// \return OK if valid; VerificationFailure if the signature does not verify;
///         InvalidArgument if the signature is malformed.
Status Verify(SchemeId scheme, const Bytes& public_key, const Bytes& message,
              const Bytes& signature);

/// One item of a VerifyBatch call. Pointers (never null) instead of copies:
/// a batch borrows its inputs for the duration of the call only.
struct VerifyRequest {
  SchemeId scheme = SchemeId::kMerkleSig;
  const Bytes* public_key = nullptr;
  const Bytes* message = nullptr;
  const Bytes* signature = nullptr;
};

/// \brief Verifies many signatures in one pass. Semantically identical to
/// calling Verify per request — results[i] is exactly what Verify would
/// return for requests[i], and every failure is audited through the same
/// choke point — but the hash-chain walks of all Winternitz and MSS
/// signatures are pooled and advanced in lock-step through the multi-buffer
/// SHA-256 engine, so a batch of N costs far fewer compression calls than
/// N sequential verifications. Each message's digest is computed once and
/// shared across that signature's chains.
std::vector<Status> VerifyBatch(const std::vector<VerifyRequest>& requests);

}  // namespace crypto
}  // namespace tcvs
