#pragma once

#include <vector>

#include "crypto/signature.h"
#include "crypto/winternitz.h"

namespace tcvs {
namespace crypto {

/// \brief Merkle signature scheme (MSS): a many-time signature built from
/// 2^height Winternitz one-time keys whose compressed public keys are the
/// leaves of a hash tree; the tree root is the (32-byte) public key.
///
/// This is the construction of the paper's reference [9] (Merkle, CRYPTO'89)
/// and the PKI instantiation used by Protocol I: existential unforgeability
/// from a hash function alone.
///
/// The signer is stateful: every Sign consumes the next leaf, and the key is
/// exhausted after 2^height signatures (Sign then fails with
/// FailedPrecondition). Each signature embeds the leaf index, the WOTS
/// signature, and the authentication path, so verification needs only the
/// 32-byte root.
class MerkleSigner : public Signer {
 public:
  /// Deterministically generates all 2^height one-time keys from `seed` and
  /// builds the tree. Keygen cost is O(2^height) WOTS keygens.
  MerkleSigner(const Bytes& seed, int height, WotsParams params = WotsParams{});

  Result<Bytes> Sign(const Bytes& message) override;
  const Bytes& public_key() const override { return root_; }
  SchemeId scheme() const override { return SchemeId::kMerkleSig; }
  uint64_t remaining_signatures() const override {
    return (1ULL << height_) - next_leaf_;
  }

  int height() const { return height_; }

  /// Verifies an MSS signature against the 32-byte root public key.
  static Status VerifySignature(const Bytes& public_key, const Bytes& message,
                                const Bytes& signature);

  /// \brief An MSS signature parsed for batched verification. The embedded
  /// WOTS signature still needs its chain walk — the expensive half, which
  /// crypto::VerifyBatch pools across many signatures — while the leaf
  /// index and authentication path are ready for FinishVerify.
  struct PreparedSignature {
    WotsParams params;
    uint64_t leaf = 0;
    size_t height = 0;
    Bytes wots_sig;
    Bytes auth_path;  // `height` sibling digests, leaf level first.
  };

  /// Parses and shape-checks `signature` without hashing anything.
  static Result<PreparedSignature> Prepare(const Bytes& signature);

  /// Completes verification: folds `wots_pk` (the WOTS public key implied
  /// by the chain walk over `prepared.wots_sig`) into the leaf, walks the
  /// authentication path, and compares against the root `public_key`.
  static Status FinishVerify(const Bytes& public_key,
                             const PreparedSignature& prepared,
                             const Bytes& wots_pk);

 private:
  Bytes LeafSeed(uint64_t leaf) const;

  Bytes seed_;
  int height_;
  WotsParams params_;
  uint64_t next_leaf_ = 0;
  // levels_[0] = leaves (2^h digests), levels_[h] = {root}.
  std::vector<std::vector<Digest>> levels_;
  Bytes root_;
};

}  // namespace crypto
}  // namespace tcvs
