#pragma once

#include <cstdint>
#include <string_view>

#include "util/bytes.h"

namespace tcvs {
namespace crypto {

/// Number of bytes in a SHA-256 digest.
inline constexpr size_t kDigestSize = 32;

/// Digests are plain byte strings of kDigestSize bytes.
using Digest = Bytes;

/// \brief Incremental SHA-256 (FIPS 180-4), implemented from scratch.
///
/// Usage:
/// \code
///   Sha256 h;
///   h.Update(part1);
///   h.Update(part2);
///   Digest d = h.Finish();
/// \endcode
/// After Finish() the object must not be reused without Reset().
class Sha256 {
 public:
  Sha256() { Reset(); }

  /// Re-initializes to the empty-message state.
  void Reset();

  /// Absorbs `len` bytes.
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Pads, finalizes, and returns the 32-byte digest.
  Digest Finish();

  /// One-shot convenience.
  static Digest Hash(const Bytes& data);
  static Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// \brief h(a ‖ b): digest of the concatenation of two byte strings.
///
/// This is the node-combining function of the Merkle tree (paper §4.1).
Digest HashConcat(const Bytes& a, const Bytes& b);

/// \brief h(a ‖ b ‖ c).
Digest HashConcat(const Bytes& a, const Bytes& b, const Bytes& c);

}  // namespace crypto
}  // namespace tcvs
