#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace tcvs {
namespace crypto {

/// Number of bytes in a SHA-256 digest.
inline constexpr size_t kDigestSize = 32;

/// Digests are plain byte strings of kDigestSize bytes.
using Digest = Bytes;

/// \brief Compression-function engines behind the one public Sha256 API.
///
/// Selected once per process (CPUID probe for the SHA extensions) the first
/// time a block is compressed; every engine computes the identical FIPS
/// 180-4 function, so the choice is invisible except in throughput and in
/// the `crypto.sha256.engine` gauge.
enum class Sha256Engine : int {
  /// Portable from-scratch implementation — always available.
  kScalar = 0,
  /// x86 SHA-NI (`sha256rnds2` et al.), ~one order of magnitude faster per
  /// block. Used only when CPUID reports the SHA extensions.
  kShaNi = 1,
};

/// The engine the process is currently dispatching to.
Sha256Engine ActiveSha256Engine();

/// Human-readable engine name ("scalar", "sha_ni") for logs and stats.
const char* Sha256EngineName(Sha256Engine engine);

/// True when `engine` can run on this CPU.
bool Sha256EngineSupported(Sha256Engine engine);

/// \brief Test hook: pin dispatch to `engine` (pass the CPU-detected default
/// by calling ResetSha256Engine). Returns false (and changes nothing) when
/// the CPU cannot run it. Intended for single-threaded test setup; the
/// FIPS-vector suite uses it to drive every engine through one vector set.
bool ForceSha256Engine(Sha256Engine engine);

/// Undoes ForceSha256Engine: dispatch returns to the CPUID-detected engine.
void ResetSha256Engine();

/// \brief Incremental SHA-256 (FIPS 180-4), implemented from scratch.
///
/// Usage:
/// \code
///   Sha256 h;
///   h.Update(part1);
///   h.Update(part2);
///   Digest d = h.Finish();
/// \endcode
/// After Finish() the object must not be reused without Reset().
class Sha256 {
 public:
  Sha256() { Reset(); }

  /// Re-initializes to the empty-message state.
  void Reset();

  /// Absorbs `len` bytes.
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Pads, finalizes, and returns the 32-byte digest.
  Digest Finish();

  /// One-shot convenience.
  static Digest Hash(const Bytes& data);
  static Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// \brief Multi-buffer hashing: digests of `n` independent messages in one
/// call. Short messages (≤ 55 bytes, a single padded block — the WOTS
/// chain-step and Merkle node-combine shapes) are compressed two streams at
/// a time, so independent sha256rnds2 chains overlap and hide each other's
/// latency; longer messages fall back to the sequential engine. Exactly
/// equivalent to calling Sha256::Hash per message.
///
/// `HashManyInto` writes digests[i] for messages[i] (digests must have n
/// entries); the vector overload allocates the output.
void HashManyInto(const Bytes* const* messages, size_t n, Digest* digests);
std::vector<Digest> HashMany(const std::vector<Bytes>& messages);

/// \brief h(a ‖ b): digest of the concatenation of two byte strings.
///
/// This is the node-combining function of the Merkle tree (paper §4.1).
Digest HashConcat(const Bytes& a, const Bytes& b);

/// \brief h(a ‖ b ‖ c).
Digest HashConcat(const Bytes& a, const Bytes& b, const Bytes& c);

}  // namespace crypto
}  // namespace tcvs
