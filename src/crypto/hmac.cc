#include "crypto/hmac.h"

namespace tcvs {
namespace crypto {

Digest HmacSha256(const Bytes& key, const Bytes& msg) {
  constexpr size_t kBlock = 64;
  Bytes k = key;
  if (k.size() > kBlock) k = Sha256::Hash(k);
  k.resize(kBlock, 0);

  Bytes ipad(kBlock), opad(kBlock);
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad);
  inner.Update(msg);
  Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  return outer.Finish();
}

Digest Prf(const Bytes& seed, uint64_t index) {
  Bytes msg(8);
  for (int i = 0; i < 8; ++i) msg[i] = static_cast<uint8_t>(index >> (8 * i));
  return HmacSha256(seed, msg);
}

Digest Prf2(const Bytes& seed, uint64_t a, uint64_t b) {
  Bytes msg(16);
  for (int i = 0; i < 8; ++i) msg[i] = static_cast<uint8_t>(a >> (8 * i));
  for (int i = 0; i < 8; ++i) msg[8 + i] = static_cast<uint8_t>(b >> (8 * i));
  return HmacSha256(seed, msg);
}

}  // namespace crypto
}  // namespace tcvs
