#pragma once

#include <vector>

#include "crypto/sha256.h"
#include "util/result.h"
#include "util/untrusted.h"

namespace tcvs {
namespace crypto {

/// Taint-verifier token: a checkpoint reply passed
/// TransparencyLog::VerifyConsistency against the client's remembered
/// (size, root) checkpoint. See util/untrusted.h.
struct ConsistencyVerified {
  TCVS_TAINT_VERIFIER(ConsistencyVerified);
};

/// \brief An append-only Merkle log with inclusion and consistency proofs
/// (the Certificate-Transparency construction, RFC 6962 §2.1).
///
/// The trusted-CVS use: the untrusted server appends h(ctr ‖ M(D)) after
/// every transaction. A client that remembers one (size, root) checkpoint
/// can later demand a *consistency proof* that today's log extends it —
/// rewriting or forking history then requires breaking the hash function.
/// Inclusion proofs let an auditor verify "state X was the database at
/// counter c" — the verifiable complement of the journal-based fault
/// localization (paper future-work item 1).
///
/// Domain separation follows RFC 6962: leaf hash = H(0x00 ‖ entry),
/// node hash = H(0x01 ‖ left ‖ right). The empty log's root is H("").
class TransparencyLog {
 public:
  TransparencyLog() = default;

  /// Appends an entry; returns its index.
  uint64_t Append(const Bytes& entry);

  uint64_t size() const { return leaves_.size(); }

  /// Root over the current log (Merkle Tree Hash of all entries).
  Digest Root() const;

  /// Root over the first `n` entries (n ≤ size()).
  Result<Digest> RootAt(uint64_t n) const;

  /// Audit path proving entry `index` is in the log of size `n`
  /// (RFC 6962 §2.1.1).
  Result<std::vector<Digest>> InclusionProof(uint64_t index, uint64_t n) const;

  /// Proof that the log of size `m` is a prefix of the log of size `n`
  /// (RFC 6962 §2.1.2), m ≤ n.
  Result<std::vector<Digest>> ConsistencyProof(uint64_t m, uint64_t n) const;

  /// \name Verifiers (pure functions; run by clients/auditors).
  /// @{
  /// Checks an inclusion proof for `entry` at `index` in a log of size `n`
  /// with root `root`.
  static Status VerifyInclusion(const Bytes& entry, uint64_t index, uint64_t n,
                                const Digest& root,
                                const std::vector<Digest>& proof);

  /// Checks that a log of size `n` with root `new_root` extends the log of
  /// size `m` with root `old_root`. Success justifies endorsing the
  /// checkpoint with ConsistencyVerified.
  TCVS_ENDORSER static Status VerifyConsistency(
      uint64_t m, uint64_t n, const Digest& old_root, const Digest& new_root,
      const std::vector<Digest>& proof);
  /// @}

  /// Leaf hash H(0x00 ‖ entry), exposed for tests.
  static Digest LeafHash(const Bytes& entry);

  /// Raw leaf hashes (for persistence).
  const std::vector<Digest>& leaf_hashes() const { return leaves_; }

  /// Reconstructs a log from persisted leaf hashes.
  static TransparencyLog FromLeafHashes(std::vector<Digest> leaves) {
    TransparencyLog log;
    log.leaves_ = std::move(leaves);
    return log;
  }

 private:
  Digest SubtreeRoot(uint64_t lo, uint64_t hi) const;  // Entries [lo, hi).
  void SubtreeInclusion(uint64_t index, uint64_t lo, uint64_t hi,
                        std::vector<Digest>* proof) const;
  void SubtreeConsistency(uint64_t m, uint64_t lo, uint64_t hi, bool lo_is_old,
                          std::vector<Digest>* proof) const;

  std::vector<Digest> leaves_;  // Leaf hashes.
};

}  // namespace crypto
}  // namespace tcvs
