#include "crypto/signature.h"

#include <string>

#include "crypto/lamport.h"
#include "crypto/merkle_sig.h"
#include "crypto/winternitz.h"
#include "util/audit.h"

namespace tcvs {
namespace crypto {

std::string_view SchemeIdToString(SchemeId id) {
  switch (id) {
    case SchemeId::kLamport:
      return "Lamport";
    case SchemeId::kWinternitz:
      return "Winternitz";
    case SchemeId::kMerkleSig:
      return "MerkleSig";
  }
  return "Unknown";
}

namespace {

/// Every failed verification, whatever the scheme, is security-significant:
/// this dispatcher is the one choke point all schemes pass through.
Status Audited(SchemeId scheme, Status st) {
  if (!st.ok()) {
    util::AuditEvent event(util::AuditEventKind::kSignatureVerifyFailure);
    event.detail =
        std::string(SchemeIdToString(scheme)) + ": " + st.ToString();
    util::AuditLog::Instance().Emit(std::move(event));
  }
  return st;
}

}  // namespace

Status Verify(SchemeId scheme, const Bytes& public_key, const Bytes& message,
              const Bytes& signature) {
  switch (scheme) {
    case SchemeId::kLamport:
      return Audited(scheme, LamportSigner::VerifySignature(public_key, message,
                                                            signature));
    case SchemeId::kWinternitz:
      return Audited(scheme, WinternitzSigner::VerifySignature(
                                 public_key, message, signature));
    case SchemeId::kMerkleSig:
      return Audited(scheme, MerkleSigner::VerifySignature(public_key, message,
                                                           signature));
  }
  return Status::InvalidArgument("unknown signature scheme");
}

}  // namespace crypto
}  // namespace tcvs
