#include "crypto/signature.h"

#include <iterator>
#include <optional>
#include <string>

#include "crypto/lamport.h"
#include "crypto/merkle_sig.h"
#include "crypto/winternitz.h"
#include "util/audit.h"
#include "util/cost.h"

namespace tcvs {
namespace crypto {

std::string_view SchemeIdToString(SchemeId id) {
  switch (id) {
    case SchemeId::kLamport:
      return "Lamport";
    case SchemeId::kWinternitz:
      return "Winternitz";
    case SchemeId::kMerkleSig:
      return "MerkleSig";
  }
  return "Unknown";
}

namespace {

/// Every failed verification, whatever the scheme, is security-significant:
/// this dispatcher is the one choke point all schemes pass through.
Status Audited(SchemeId scheme, Status st) {
  if (!st.ok()) {
    util::AuditEvent event(util::AuditEventKind::kSignatureVerifyFailure);
    event.detail =
        std::string(SchemeIdToString(scheme)) + ": " + st.ToString();
    util::AuditLog::Instance().Emit(std::move(event));
  }
  return st;
}

}  // namespace

Status Verify(SchemeId scheme, const Bytes& public_key, const Bytes& message,
              const Bytes& signature) {
  if (util::CostCounters* cost = util::CurrentCostCounters()) {
    cost->sig_verifies++;
  }
  switch (scheme) {
    case SchemeId::kLamport:
      return Audited(scheme, LamportSigner::VerifySignature(public_key, message,
                                                            signature));
    case SchemeId::kWinternitz:
      return Audited(scheme, WinternitzSigner::VerifySignature(
                                 public_key, message, signature));
    case SchemeId::kMerkleSig:
      return Audited(scheme, MerkleSigner::VerifySignature(public_key, message,
                                                           signature));
  }
  return Status::InvalidArgument("unknown signature scheme");
}

std::vector<Status> VerifyBatch(const std::vector<VerifyRequest>& requests) {
  std::vector<Status> results(requests.size(), Status::OK());

  if (util::CostCounters* cost = util::CurrentCostCounters()) {
    // Lamport items route through Verify(), which counts them itself.
    for (const VerifyRequest& req : requests) {
      if (req.scheme != SchemeId::kLamport) cost->sig_verifies++;
    }
  }

  // Hash-based signatures contribute their chains to one shared pool; a
  // pending item remembers its slice of the pool and (for MSS) the parsed
  // envelope needed to finish after the walk.
  struct Pending {
    size_t request = 0;
    size_t first_chain = 0;
    size_t n_chains = 0;
    std::optional<MerkleSigner::PreparedSignature> mss;
  };
  std::vector<Digest> pool;
  std::vector<uint32_t> steps;
  std::vector<Pending> pending;

  auto admit = [&](size_t i, WotsChainWalk walk,
                   std::optional<MerkleSigner::PreparedSignature> mss) {
    pending.push_back(Pending{i, pool.size(), walk.chains.size(), std::move(mss)});
    pool.insert(pool.end(), std::make_move_iterator(walk.chains.begin()),
                std::make_move_iterator(walk.chains.end()));
    steps.insert(steps.end(), walk.steps.begin(), walk.steps.end());
  };

  for (size_t i = 0; i < requests.size(); ++i) {
    const VerifyRequest& req = requests[i];
    switch (req.scheme) {
      case SchemeId::kLamport:
        // Lamport reveals preimages directly — no chains to amortize.
        results[i] =
            Verify(req.scheme, *req.public_key, *req.message, *req.signature);
        break;
      case SchemeId::kWinternitz: {
        auto walk = WinternitzSigner::WalkFromSignature(*req.message,
                                                        *req.signature);
        if (!walk.ok()) {
          results[i] = Audited(req.scheme, walk.status());
          break;
        }
        admit(i, std::move(*walk), std::nullopt);
        break;
      }
      case SchemeId::kMerkleSig: {
        auto prepared = MerkleSigner::Prepare(*req.signature);
        if (!prepared.ok()) {
          results[i] = Audited(req.scheme, prepared.status());
          break;
        }
        auto walk = WinternitzSigner::WalkFromSignature(
            *req.message, prepared->wots_sig, prepared->params);
        if (!walk.ok()) {
          results[i] = Audited(req.scheme, walk.status());
          break;
        }
        admit(i, std::move(*walk), std::move(*prepared));
        break;
      }
      default:
        results[i] = Status::InvalidArgument("unknown signature scheme");
        break;
    }
  }

  // One lock-step walk over every chain of every admitted signature.
  AdvanceChains(&pool, std::move(steps));

  for (const Pending& p : pending) {
    const VerifyRequest& req = requests[p.request];
    Bytes wots_pk =
        WinternitzSigner::FoldPublicKey(pool.data() + p.first_chain, p.n_chains);
    Status st;
    if (p.mss.has_value()) {
      st = MerkleSigner::FinishVerify(*req.public_key, *p.mss, wots_pk);
    } else if (util::ConstantTimeEqual(wots_pk, *req.public_key)) {
      st = Status::OK();
    } else {
      st = Status::VerificationFailure("Winternitz signature mismatch");
    }
    results[p.request] = Audited(req.scheme, std::move(st));
  }
  return results;
}

}  // namespace crypto
}  // namespace tcvs
