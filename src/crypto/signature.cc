#include "crypto/signature.h"

#include "crypto/lamport.h"
#include "crypto/merkle_sig.h"
#include "crypto/winternitz.h"

namespace tcvs {
namespace crypto {

std::string_view SchemeIdToString(SchemeId id) {
  switch (id) {
    case SchemeId::kLamport:
      return "Lamport";
    case SchemeId::kWinternitz:
      return "Winternitz";
    case SchemeId::kMerkleSig:
      return "MerkleSig";
  }
  return "Unknown";
}

Status Verify(SchemeId scheme, const Bytes& public_key, const Bytes& message,
              const Bytes& signature) {
  switch (scheme) {
    case SchemeId::kLamport:
      return LamportSigner::VerifySignature(public_key, message, signature);
    case SchemeId::kWinternitz:
      return WinternitzSigner::VerifySignature(public_key, message, signature);
    case SchemeId::kMerkleSig:
      return MerkleSigner::VerifySignature(public_key, message, signature);
  }
  return Status::InvalidArgument("unknown signature scheme");
}

}  // namespace crypto
}  // namespace tcvs
