#pragma once

#include "crypto/signature.h"

namespace tcvs {
namespace crypto {

/// \brief Lamport one-time signatures over SHA-256 (Merkle's reference [7]).
///
/// The secret key is 2×256 32-byte strings derived from a 32-byte seed via a
/// PRF; the public key is their 512 hashes (16 KiB serialized). Signing a
/// message reveals, for each bit of its digest, the corresponding secret
/// half. Signing two distinct messages with the same key breaks security, so
/// the signer refuses a second Sign.
class LamportSigner : public Signer {
 public:
  /// Derives the keypair deterministically from `seed`.
  explicit LamportSigner(const Bytes& seed);

  Result<Bytes> Sign(const Bytes& message) override;
  const Bytes& public_key() const override { return public_key_; }
  SchemeId scheme() const override { return SchemeId::kLamport; }
  uint64_t remaining_signatures() const override { return used_ ? 0 : 1; }

  /// Verifies a Lamport signature; see crypto::Verify for semantics.
  static Status VerifySignature(const Bytes& public_key, const Bytes& message,
                                const Bytes& signature);

 private:
  Bytes seed_;
  Bytes public_key_;  // 512 * 32 bytes: pk[i][b] at offset (2*i + b) * 32.
  bool used_ = false;
};

}  // namespace crypto
}  // namespace tcvs
