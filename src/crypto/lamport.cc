#include "crypto/lamport.h"

#include "crypto/hmac.h"

namespace tcvs {
namespace crypto {

namespace {
constexpr size_t kBits = 256;
// Secret half for (bit index, bit value).
Digest SecretHalf(const Bytes& seed, size_t i, int b) {
  return Prf2(seed, i, static_cast<uint64_t>(b));
}
}  // namespace

LamportSigner::LamportSigner(const Bytes& seed) : seed_(seed) {
  public_key_.reserve(2 * kBits * kDigestSize);
  for (size_t i = 0; i < kBits; ++i) {
    for (int b = 0; b < 2; ++b) {
      Digest pk = Sha256::Hash(SecretHalf(seed_, i, b));
      util::Append(&public_key_, pk);
    }
  }
}

Result<Bytes> LamportSigner::Sign(const Bytes& message) {
  if (used_) {
    return Status::FailedPrecondition("Lamport key already used");
  }
  used_ = true;
  Digest md = Sha256::Hash(message);
  Bytes sig;
  sig.reserve(kBits * kDigestSize);
  for (size_t i = 0; i < kBits; ++i) {
    int bit = (md[i / 8] >> (7 - i % 8)) & 1;
    util::Append(&sig, SecretHalf(seed_, i, bit));
  }
  return sig;
}

Status LamportSigner::VerifySignature(const Bytes& public_key,
                                      const Bytes& message, const Bytes& signature) {
  if (public_key.size() != 2 * kBits * kDigestSize) {
    return Status::InvalidArgument("Lamport public key has wrong size");
  }
  if (signature.size() != kBits * kDigestSize) {
    return Status::InvalidArgument("Lamport signature has wrong size");
  }
  Digest md = Sha256::Hash(message);
  for (size_t i = 0; i < kBits; ++i) {
    int bit = (md[i / 8] >> (7 - i % 8)) & 1;
    Bytes revealed(signature.begin() + i * kDigestSize,
                   signature.begin() + (i + 1) * kDigestSize);
    Digest h = Sha256::Hash(revealed);
    size_t pk_off = (2 * i + bit) * kDigestSize;
    Bytes expected(public_key.begin() + pk_off,
                   public_key.begin() + pk_off + kDigestSize);
    if (!util::ConstantTimeEqual(h, expected)) {
      return Status::VerificationFailure("Lamport signature mismatch at bit " +
                                         std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace crypto
}  // namespace tcvs
