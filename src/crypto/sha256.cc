#include "crypto/sha256.h"

#include <atomic>
#include <cstring>

#include "util/cost.h"
#include "util/metrics.h"

// The SHA-NI engine is compiled whenever the toolchain can target it (GCC /
// clang on x86-64); whether it RUNS is a CPUID decision at startup. On other
// architectures only the scalar engine exists.
#if defined(__x86_64__) && defined(__GNUC__)
#define TCVS_SHA256_SHANI_BUILD 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace tcvs {
namespace crypto {

namespace {

constexpr uint32_t kInit[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
};

constexpr uint32_t kRound[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
inline uint32_t Ch(uint32_t x, uint32_t y, uint32_t z) { return (x & y) ^ (~x & z); }
inline uint32_t Maj(uint32_t x, uint32_t y, uint32_t z) {
  return (x & y) ^ (x & z) ^ (y & z);
}
inline uint32_t BigSigma0(uint32_t x) { return Rotr(x, 2) ^ Rotr(x, 13) ^ Rotr(x, 22); }
inline uint32_t BigSigma1(uint32_t x) { return Rotr(x, 6) ^ Rotr(x, 11) ^ Rotr(x, 25); }
inline uint32_t SmallSigma0(uint32_t x) { return Rotr(x, 7) ^ Rotr(x, 18) ^ (x >> 3); }
inline uint32_t SmallSigma1(uint32_t x) { return Rotr(x, 17) ^ Rotr(x, 19) ^ (x >> 10); }

// ---------------------------------------------------------------------------
// Scalar engine (portable FIPS 180-4).

void ScalarCompress(uint32_t state[8], const uint8_t* blocks, size_t nblocks) {
  for (; nblocks > 0; --nblocks, blocks += 64) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (uint32_t(blocks[4 * i]) << 24) |
             (uint32_t(blocks[4 * i + 1]) << 16) |
             (uint32_t(blocks[4 * i + 2]) << 8) | uint32_t(blocks[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      w[i] = SmallSigma1(w[i - 2]) + w[i - 7] + SmallSigma0(w[i - 15]) +
             w[i - 16];
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      uint32_t t1 = h + BigSigma1(e) + Ch(e, f, g) + kRound[i] + w[i];
      uint32_t t2 = BigSigma0(a) + Maj(a, b, c);
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

void ScalarCompressPair(uint32_t* const states[2],
                        const uint8_t* const blocks[2]) {
  ScalarCompress(states[0], blocks[0], 1);
  ScalarCompress(states[1], blocks[1], 1);
}

// ---------------------------------------------------------------------------
// SHA-NI engine. One generic lane-parallel transform: n = 1 is the
// sequential fast path, n = 2 interleaves two independent single-block
// streams so the sha256rnds2 dependency chains of one stream execute in the
// latency shadows of the other (multi-buffer hashing).

#ifdef TCVS_SHA256_SHANI_BUILD

// Round constants for rounds 4g..4g+3, one per 32-bit lane. kRound is laid
// out in natural order, which is exactly the lane order _mm_loadu wants.
#define TCVS_SHA256_K4(g) \
  _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kRound[4 * (g)]))

__attribute__((target("sha,sse4.1"), always_inline)) inline void ShaNiLanes(
    uint32_t* const* states, const uint8_t* const* blocks, int n) {
  // Byte shuffle turning each big-endian 32-bit message word little-endian.
  const __m128i mask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  __m128i st0[2], st1[2], save0[2], save1[2], m[4][2], msg[2], tmp[2];

  for (int l = 0; l < n; ++l) {
    // Load a..h and permute into the ABEF / CDGH register layout the
    // sha256rnds2 instruction expects.
    __m128i t =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&states[l][0]));
    __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&states[l][4]));
    t = _mm_shuffle_epi32(t, 0xB1);
    s = _mm_shuffle_epi32(s, 0x1B);
    st0[l] = _mm_alignr_epi8(t, s, 8);
    st1[l] = _mm_blend_epi16(s, t, 0xF0);
    save0[l] = st0[l];
    save1[l] = st1[l];
  }

  // 16 groups of 4 rounds. Group g consumes message vector m[g mod 4]; the
  // message schedule (sha256msg1/msg2 + the alignr carry) runs in the exact
  // canonical positions: msg2 scheduling in groups 3..14, msg1 priming in
  // groups 1..12, loads in groups 0..3.
  for (int g = 0; g < 16; ++g) {
    for (int l = 0; l < n; ++l) {
      if (g < 4) {
        m[g][l] = _mm_shuffle_epi8(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(blocks[l] + 16 * g)),
            mask);
      }
      msg[l] = _mm_add_epi32(m[g & 3][l], TCVS_SHA256_K4(g));
      st1[l] = _mm_sha256rnds2_epu32(st1[l], st0[l], msg[l]);
    }
    for (int l = 0; l < n; ++l) {
      if (g >= 3 && g <= 14) {
        tmp[l] = _mm_alignr_epi8(m[g & 3][l], m[(g + 3) & 3][l], 4);
        m[(g + 1) & 3][l] = _mm_add_epi32(m[(g + 1) & 3][l], tmp[l]);
        m[(g + 1) & 3][l] =
            _mm_sha256msg2_epu32(m[(g + 1) & 3][l], m[g & 3][l]);
      }
      msg[l] = _mm_shuffle_epi32(msg[l], 0x0E);
      st0[l] = _mm_sha256rnds2_epu32(st0[l], st1[l], msg[l]);
      if (g >= 1 && g <= 12) {
        m[(g + 3) & 3][l] =
            _mm_sha256msg1_epu32(m[(g + 3) & 3][l], m[g & 3][l]);
      }
    }
  }

  for (int l = 0; l < n; ++l) {
    st0[l] = _mm_add_epi32(st0[l], save0[l]);
    st1[l] = _mm_add_epi32(st1[l], save1[l]);
    __m128i t = _mm_shuffle_epi32(st0[l], 0x1B);
    __m128i s = _mm_shuffle_epi32(st1[l], 0xB1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&states[l][0]),
                     _mm_blend_epi16(t, s, 0xF0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&states[l][4]),
                     _mm_alignr_epi8(s, t, 8));
  }
}

#undef TCVS_SHA256_K4

__attribute__((target("sha,sse4.1"))) void ShaNiCompress(uint32_t state[8],
                                                         const uint8_t* blocks,
                                                         size_t nblocks) {
  uint32_t* st[1] = {state};
  for (; nblocks > 0; --nblocks, blocks += 64) {
    const uint8_t* b[1] = {blocks};
    ShaNiLanes(st, b, 1);
  }
}

__attribute__((target("sha,sse4.1"))) void ShaNiCompressPair(
    uint32_t* const states[2], const uint8_t* const blocks[2]) {
  ShaNiLanes(states, blocks, 2);
}

bool CpuHasShaNi() {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (!__get_cpuid_count(7, 0, &a, &b, &c, &d)) return false;
  if ((b & (1u << 29)) == 0) return false;  // EBX bit 29: SHA extensions.
  if (!__get_cpuid(1, &a, &b, &c, &d)) return false;
  return (c & (1u << 19)) != 0;  // ECX bit 19: SSE4.1.
}

#else  // !TCVS_SHA256_SHANI_BUILD

bool CpuHasShaNi() { return false; }

#endif

// ---------------------------------------------------------------------------
// Dispatch. Selected once from CPUID; ForceSha256Engine overrides for tests.

struct EngineOps {
  Sha256Engine id;
  void (*compress)(uint32_t state[8], const uint8_t* blocks, size_t nblocks);
  void (*compress_pair)(uint32_t* const states[2],
                        const uint8_t* const blocks[2]);
};

constexpr EngineOps kScalarOps = {Sha256Engine::kScalar, ScalarCompress,
                                  ScalarCompressPair};
#ifdef TCVS_SHA256_SHANI_BUILD
constexpr EngineOps kShaNiOps = {Sha256Engine::kShaNi, ShaNiCompress,
                                 ShaNiCompressPair};
#endif

const EngineOps* OpsFor(Sha256Engine engine) {
#ifdef TCVS_SHA256_SHANI_BUILD
  if (engine == Sha256Engine::kShaNi) return &kShaNiOps;
#else
  (void)engine;
#endif
  return &kScalarOps;
}

const EngineOps* DetectedOps() {
  static const EngineOps* const ops =
      CpuHasShaNi() ? OpsFor(Sha256Engine::kShaNi)
                    : OpsFor(Sha256Engine::kScalar);
  return ops;
}

std::atomic<const EngineOps*> g_forced_ops{nullptr};

inline const EngineOps* ActiveOps() {
  const EngineOps* forced = g_forced_ops.load(std::memory_order_acquire);
  return forced != nullptr ? forced : DetectedOps();
}

// The two engine-level metrics live on the compress path, not in Finish():
// `compress_bytes_total` counts bytes pushed through the compression
// function (message + padding, multi-buffer included), which is the quantity
// the engine's bytes/sec is measured in; the gauge pins which engine is hot.
// The same quantity feeds the ambient per-request cost accumulator.
inline void AccountCompress(const EngineOps* ops, size_t blocks) {
  static util::Counter* const bytes_hashed =
      util::MetricsRegistry::Instance().GetCounter(
          "crypto.sha256.compress_bytes_total");
  static util::Gauge* const engine =
      util::MetricsRegistry::Instance().GetGauge("crypto.sha256.engine");
  bytes_hashed->Increment(64 * blocks);
  engine->Set(static_cast<int64_t>(ops->id));
  if (util::CostCounters* cost = util::CurrentCostCounters()) {
    cost->bytes_hashed += 64 * blocks;
  }
}

inline void CompressBlocks(uint32_t state[8], const uint8_t* blocks,
                           size_t nblocks) {
  const EngineOps* ops = ActiveOps();
  AccountCompress(ops, nblocks);
  ops->compress(state, blocks, nblocks);
}

inline void CompressPair(uint32_t* const states[2],
                         const uint8_t* const blocks[2]) {
  const EngineOps* ops = ActiveOps();
  AccountCompress(ops, 2);
  ops->compress_pair(states, blocks);
}

// Pads a ≤ 55-byte message into the single 64-byte block it occupies.
void PadSingleBlock(const Bytes& message, uint8_t block[64]) {
  std::memset(block, 0, 64);
  if (!message.empty()) std::memcpy(block, message.data(), message.size());
  block[message.size()] = 0x80;
  const uint64_t bits = uint64_t(message.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    block[56 + i] = static_cast<uint8_t>(bits >> (56 - 8 * i));
  }
}

void StateToDigest(const uint32_t state[8], Digest* out) {
  out->resize(kDigestSize);
  for (int i = 0; i < 8; ++i) {
    (*out)[4 * i] = static_cast<uint8_t>(state[i] >> 24);
    (*out)[4 * i + 1] = static_cast<uint8_t>(state[i] >> 16);
    (*out)[4 * i + 2] = static_cast<uint8_t>(state[i] >> 8);
    (*out)[4 * i + 3] = static_cast<uint8_t>(state[i]);
  }
}

}  // namespace

Sha256Engine ActiveSha256Engine() { return ActiveOps()->id; }

const char* Sha256EngineName(Sha256Engine engine) {
  switch (engine) {
    case Sha256Engine::kScalar:
      return "scalar";
    case Sha256Engine::kShaNi:
      return "sha_ni";
  }
  return "unknown";
}

bool Sha256EngineSupported(Sha256Engine engine) {
  if (engine == Sha256Engine::kScalar) return true;
  return CpuHasShaNi();
}

bool ForceSha256Engine(Sha256Engine engine) {
  if (!Sha256EngineSupported(engine)) return false;
  g_forced_ops.store(OpsFor(engine), std::memory_order_release);
  util::MetricsRegistry::Instance()
      .GetGauge("crypto.sha256.engine")
      ->Set(static_cast<int64_t>(engine));
  return true;
}

void ResetSha256Engine() {
  g_forced_ops.store(nullptr, std::memory_order_release);
  util::MetricsRegistry::Instance()
      .GetGauge("crypto.sha256.engine")
      ->Set(static_cast<int64_t>(DetectedOps()->id));
}

void Sha256::Reset() {
  std::memcpy(state_, kInit, sizeof(state_));
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha256::ProcessBlock(const uint8_t block[64]) {
  CompressBlocks(state_, block, 1);
}

void Sha256::Update(const uint8_t* data, size_t len) {
  bit_count_ += uint64_t(len) * 8;
  while (len > 0) {
    if (buffer_len_ == 0 && len >= 64) {
      // Whole-block run: one dispatch for every full block in the input.
      const size_t nblocks = len / 64;
      CompressBlocks(state_, data, nblocks);
      data += nblocks * 64;
      len -= nblocks * 64;
      continue;
    }
    size_t take = std::min(len, 64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
}

Digest Sha256::Finish() {
  // Counted here, not in Update: `bit_count_` is exactly the message bytes,
  // whereas Update also sees the padding Finish feeds back through it.
  static util::Counter* const hashes =
      util::MetricsRegistry::Instance().GetCounter(
          "crypto.sha256.hashes_total");
  static util::Counter* const hashed_bytes =
      util::MetricsRegistry::Instance().GetCounter(
          "crypto.sha256.bytes_total");
  hashes->Increment();
  hashed_bytes->Increment(bit_count_ / 8);
  if (util::CostCounters* cost = util::CurrentCostCounters()) cost->hashes++;
  uint64_t bits = bit_count_;
  // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit big-endian length.
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0x00;
  while (buffer_len_ != 56) Update(&zero, 1);
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = static_cast<uint8_t>(bits >> (56 - 8 * i));
  // Bypass Update's bit counting for the length field by processing directly.
  std::memcpy(buffer_ + 56, len_be, 8);
  ProcessBlock(buffer_);
  buffer_len_ = 0;

  Digest out;
  StateToDigest(state_, &out);
  return out;
}

Digest Sha256::Hash(const Bytes& data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

Digest Sha256::Hash(std::string_view data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

void HashManyInto(const Bytes* const* messages, size_t n, Digest* digests) {
  static util::Counter* const hashes =
      util::MetricsRegistry::Instance().GetCounter(
          "crypto.sha256.hashes_total");
  static util::Counter* const hashed_bytes =
      util::MetricsRegistry::Instance().GetCounter(
          "crypto.sha256.bytes_total");

  // Pair up the single-block messages (≤ 55 bytes payload fits message,
  // 0x80, and the length field in one block); everything longer takes the
  // incremental path. Padding happens into local blocks BEFORE the digest
  // is written, so digests[i] may alias messages[i].
  size_t pending[2];
  int npending = 0;
  for (size_t i = 0; i < n; ++i) {
    if (messages[i]->size() <= 55) {
      hashes->Increment();
      hashed_bytes->Increment(messages[i]->size());
      if (util::CostCounters* cost = util::CurrentCostCounters()) {
        cost->hashes++;  // Long messages count in Sha256::Finish.
      }
      pending[npending++] = i;
      if (npending == 2) {
        uint8_t blocks[2][64];
        uint32_t states[2][8];
        for (int l = 0; l < 2; ++l) {
          PadSingleBlock(*messages[pending[l]], blocks[l]);
          std::memcpy(states[l], kInit, sizeof(kInit));
        }
        uint32_t* state_ptrs[2] = {states[0], states[1]};
        const uint8_t* block_ptrs[2] = {blocks[0], blocks[1]};
        CompressPair(state_ptrs, block_ptrs);
        for (int l = 0; l < 2; ++l) {
          StateToDigest(states[l], &digests[pending[l]]);
        }
        npending = 0;
      }
    } else {
      // Sha256::Finish does its own metric accounting.
      digests[i] = Sha256::Hash(*messages[i]);
    }
  }
  if (npending == 1) {
    uint8_t block[64];
    uint32_t state[8];
    PadSingleBlock(*messages[pending[0]], block);
    std::memcpy(state, kInit, sizeof(kInit));
    CompressBlocks(state, block, 1);
    StateToDigest(state, &digests[pending[0]]);
  }
}

std::vector<Digest> HashMany(const std::vector<Bytes>& messages) {
  std::vector<const Bytes*> ptrs;
  ptrs.reserve(messages.size());
  for (const auto& m : messages) ptrs.push_back(&m);
  std::vector<Digest> out(messages.size());
  HashManyInto(ptrs.data(), ptrs.size(), out.data());
  return out;
}

Digest HashConcat(const Bytes& a, const Bytes& b) {
  Sha256 h;
  h.Update(a);
  h.Update(b);
  return h.Finish();
}

Digest HashConcat(const Bytes& a, const Bytes& b, const Bytes& c) {
  Sha256 h;
  h.Update(a);
  h.Update(b);
  h.Update(c);
  return h.Finish();
}

}  // namespace crypto
}  // namespace tcvs
