#include "crypto/sha256.h"

#include <cstring>

#include "util/metrics.h"

namespace tcvs {
namespace crypto {

namespace {

constexpr uint32_t kInit[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
};

constexpr uint32_t kRound[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
inline uint32_t Ch(uint32_t x, uint32_t y, uint32_t z) { return (x & y) ^ (~x & z); }
inline uint32_t Maj(uint32_t x, uint32_t y, uint32_t z) {
  return (x & y) ^ (x & z) ^ (y & z);
}
inline uint32_t BigSigma0(uint32_t x) { return Rotr(x, 2) ^ Rotr(x, 13) ^ Rotr(x, 22); }
inline uint32_t BigSigma1(uint32_t x) { return Rotr(x, 6) ^ Rotr(x, 11) ^ Rotr(x, 25); }
inline uint32_t SmallSigma0(uint32_t x) { return Rotr(x, 7) ^ Rotr(x, 18) ^ (x >> 3); }
inline uint32_t SmallSigma1(uint32_t x) { return Rotr(x, 17) ^ Rotr(x, 19) ^ (x >> 10); }

}  // namespace

void Sha256::Reset() {
  std::memcpy(state_, kInit, sizeof(state_));
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha256::ProcessBlock(const uint8_t block[64]) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (uint32_t(block[4 * i]) << 24) | (uint32_t(block[4 * i + 1]) << 16) |
           (uint32_t(block[4 * i + 2]) << 8) | uint32_t(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    w[i] = SmallSigma1(w[i - 2]) + w[i - 7] + SmallSigma0(w[i - 15]) + w[i - 16];
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    uint32_t t1 = h + BigSigma1(e) + Ch(e, f, g) + kRound[i] + w[i];
    uint32_t t2 = BigSigma0(a) + Maj(a, b, c);
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(const uint8_t* data, size_t len) {
  bit_count_ += uint64_t(len) * 8;
  while (len > 0) {
    if (buffer_len_ == 0 && len >= 64) {
      ProcessBlock(data);
      data += 64;
      len -= 64;
      continue;
    }
    size_t take = std::min(len, 64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
}

Digest Sha256::Finish() {
  // Counted here, not in Update: `bit_count_` is exactly the message bytes,
  // whereas Update also sees the padding Finish feeds back through it.
  static util::Counter* const hashes =
      util::MetricsRegistry::Instance().GetCounter(
          "crypto.sha256.hashes_total");
  static util::Counter* const hashed_bytes =
      util::MetricsRegistry::Instance().GetCounter(
          "crypto.sha256.bytes_total");
  hashes->Increment();
  hashed_bytes->Increment(bit_count_ / 8);
  uint64_t bits = bit_count_;
  // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit big-endian length.
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0x00;
  while (buffer_len_ != 56) Update(&zero, 1);
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = static_cast<uint8_t>(bits >> (56 - 8 * i));
  // Bypass Update's bit counting for the length field by processing directly.
  std::memcpy(buffer_ + 56, len_be, 8);
  ProcessBlock(buffer_);
  buffer_len_ = 0;

  Digest out(kDigestSize);
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

Digest Sha256::Hash(const Bytes& data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

Digest Sha256::Hash(std::string_view data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

Digest HashConcat(const Bytes& a, const Bytes& b) {
  Sha256 h;
  h.Update(a);
  h.Update(b);
  return h.Finish();
}

Digest HashConcat(const Bytes& a, const Bytes& b, const Bytes& c) {
  Sha256 h;
  h.Update(a);
  h.Update(b);
  h.Update(c);
  return h.Finish();
}

}  // namespace crypto
}  // namespace tcvs
