#include "crypto/winternitz.h"

#include "crypto/hmac.h"

namespace tcvs {
namespace crypto {

namespace {

// Domain-separation tag for WOTS chain starts ("w0ts" in ASCII).
constexpr uint64_t kWotsDomain = 0x77307473ULL;

Digest ChainStart(const Bytes& seed, size_t chain_index) {
  return Prf2(seed, kWotsDomain, chain_index);
}

}  // namespace

void AdvanceChains(std::vector<Digest>* chains, std::vector<uint32_t> steps) {
  std::vector<const Bytes*> active;
  std::vector<size_t> index;
  std::vector<Digest> out;
  active.reserve(chains->size());
  index.reserve(chains->size());
  for (;;) {
    active.clear();
    index.clear();
    for (size_t i = 0; i < chains->size(); ++i) {
      if (steps[i] > 0) {
        active.push_back(&(*chains)[i]);
        index.push_back(i);
      }
    }
    if (active.empty()) return;
    out.resize(active.size());
    HashManyInto(active.data(), active.size(), out.data());
    for (size_t k = 0; k < active.size(); ++k) {
      (*chains)[index[k]] = std::move(out[k]);
      --steps[index[k]];
    }
  }
}

size_t WotsParams::checksum_chains() const {
  // Max checksum value: message_chains() * chain_len().
  uint64_t max_checksum = uint64_t(message_chains()) * chain_len();
  size_t digits = 0;
  uint64_t v = max_checksum;
  while (v > 0) {
    ++digits;
    v >>= w;
  }
  return digits == 0 ? 1 : digits;
}

std::vector<uint32_t> WinternitzSigner::Chunks(const Digest& md,
                                               const WotsParams& params) {
  std::vector<uint32_t> chunks;
  chunks.reserve(params.total_chains());
  const int w = params.w;
  const uint32_t mask = params.chain_len();
  // Message chunks, MSB-first within each byte.
  int bits_taken = 0;
  uint32_t acc = 0;
  int acc_bits = 0;
  size_t byte_idx = 0;
  while (bits_taken < 256) {
    while (acc_bits < w && byte_idx < md.size()) {
      acc = (acc << 8) | md[byte_idx++];
      acc_bits += 8;
    }
    chunks.push_back((acc >> (acc_bits - w)) & mask);
    acc_bits -= w;
    acc &= (acc_bits > 0) ? ((1u << acc_bits) - 1) : 0;
    bits_taken += w;
  }
  // Checksum chunks (base-2^w little-endian digits of the checksum).
  uint64_t checksum = 0;
  for (uint32_t c : chunks) checksum += params.chain_len() - c;
  for (size_t i = 0; i < params.checksum_chains(); ++i) {
    chunks.push_back(static_cast<uint32_t>(checksum & mask));
    checksum >>= w;
  }
  return chunks;
}

WinternitzSigner::WinternitzSigner(const Bytes& seed, WotsParams params)
    : params_(params), seed_(seed) {
  std::vector<Digest> chains;
  chains.reserve(params_.total_chains());
  for (size_t i = 0; i < params_.total_chains(); ++i) {
    chains.push_back(ChainStart(seed_, i));
  }
  AdvanceChains(&chains, std::vector<uint32_t>(params_.total_chains(),
                                              params_.chain_len()));
  public_key_ = FoldPublicKey(chains.data(), chains.size());
}

Result<Bytes> WinternitzSigner::Sign(const Bytes& message) {
  if (used_) {
    return Status::FailedPrecondition("Winternitz key already used");
  }
  used_ = true;
  Digest md = Sha256::Hash(message);
  std::vector<uint32_t> chunks = Chunks(md, params_);
  std::vector<Digest> chains;
  chains.reserve(chunks.size());
  for (size_t i = 0; i < chunks.size(); ++i) {
    chains.push_back(ChainStart(seed_, i));
  }
  AdvanceChains(&chains, chunks);
  Bytes sig;
  sig.reserve(chains.size() * kDigestSize);
  for (const auto& chain : chains) util::Append(&sig, chain);
  return sig;
}

Result<WotsChainWalk> WinternitzSigner::WalkFromSignature(const Bytes& message,
                                                          const Bytes& signature,
                                                          WotsParams params) {
  Digest md = Sha256::Hash(message);
  std::vector<uint32_t> chunks = Chunks(md, params);
  if (signature.size() != chunks.size() * kDigestSize) {
    return Status::InvalidArgument("Winternitz signature has wrong size");
  }
  WotsChainWalk walk;
  walk.chains.reserve(chunks.size());
  walk.steps.reserve(chunks.size());
  for (size_t i = 0; i < chunks.size(); ++i) {
    walk.chains.emplace_back(signature.begin() + i * kDigestSize,
                             signature.begin() + (i + 1) * kDigestSize);
    walk.steps.push_back(params.chain_len() - chunks[i]);
  }
  return walk;
}

Bytes WinternitzSigner::FoldPublicKey(const Digest* ends, size_t n) {
  Sha256 h;
  for (size_t i = 0; i < n; ++i) h.Update(ends[i]);
  return h.Finish();
}

Result<Bytes> WinternitzSigner::PublicKeyFromSignature(const Bytes& message,
                                                       const Bytes& signature,
                                                       WotsParams params) {
  TCVS_ASSIGN_OR_RETURN(WotsChainWalk walk,
                        WalkFromSignature(message, signature, params));
  AdvanceChains(&walk.chains, std::move(walk.steps));
  return FoldPublicKey(walk.chains.data(), walk.chains.size());
}

Status WinternitzSigner::VerifySignature(const Bytes& public_key,
                                         const Bytes& message,
                                         const Bytes& signature, WotsParams params) {
  TCVS_ASSIGN_OR_RETURN(Bytes implied,
                        PublicKeyFromSignature(message, signature, params));
  if (!util::ConstantTimeEqual(implied, public_key)) {
    return Status::VerificationFailure("Winternitz signature mismatch");
  }
  return Status::OK();
}

}  // namespace crypto
}  // namespace tcvs
