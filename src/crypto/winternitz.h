#pragma once

#include "crypto/signature.h"

namespace tcvs {
namespace crypto {

/// \brief Parameters of a Winternitz one-time signature.
///
/// `w` is the number of message bits consumed per hash chain; larger w means
/// shorter signatures but longer chains (2^w − 1 hash steps). Supported
/// values: 1, 2, 4, 8.
struct WotsParams {
  int w = 4;

  /// Chains covering the 256-bit message digest.
  size_t message_chains() const { return (256 + w - 1) / w; }
  /// Maximum chunk value = chain length.
  uint32_t chain_len() const { return (1u << w) - 1; }
  /// Chains covering the checksum.
  size_t checksum_chains() const;
  size_t total_chains() const { return message_chains() + checksum_chains(); }
};

/// \brief Winternitz one-time signatures (WOTS) with a *compressed* 32-byte
/// public key: pk = H(end₀ ‖ end₁ ‖ … ‖ end_{L−1}).
///
/// The compressed key is what makes WOTS the right leaf primitive for the
/// Merkle signature scheme (merkle_sig.h).
class WinternitzSigner : public Signer {
 public:
  WinternitzSigner(const Bytes& seed, WotsParams params = WotsParams{});

  Result<Bytes> Sign(const Bytes& message) override;
  const Bytes& public_key() const override { return public_key_; }
  SchemeId scheme() const override { return SchemeId::kWinternitz; }
  uint64_t remaining_signatures() const override { return used_ ? 0 : 1; }

  const WotsParams& params() const { return params_; }

  /// Recomputes the compressed public key implied by `signature` on
  /// `message`. The caller compares it against a trusted key (directly or
  /// through a Merkle authentication path).
  static Result<Bytes> PublicKeyFromSignature(const Bytes& message,
                                              const Bytes& signature,
                                              WotsParams params = WotsParams{});

  /// Verifies against an explicit public key; see crypto::Verify.
  static Status VerifySignature(const Bytes& public_key, const Bytes& message,
                                const Bytes& signature,
                                WotsParams params = WotsParams{});

  /// Splits H(message) into base-2^w chunks followed by checksum chunks.
  /// Exposed for tests.
  static std::vector<uint32_t> Chunks(const Digest& md, const WotsParams& params);

 private:
  WotsParams params_;
  Bytes seed_;
  Bytes public_key_;  // 32 bytes, compressed.
  bool used_ = false;
};

}  // namespace crypto
}  // namespace tcvs
