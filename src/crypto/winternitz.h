#pragma once

#include "crypto/signature.h"

namespace tcvs {
namespace crypto {

/// \brief Parameters of a Winternitz one-time signature.
///
/// `w` is the number of message bits consumed per hash chain; larger w means
/// shorter signatures but longer chains (2^w − 1 hash steps). Supported
/// values: 1, 2, 4, 8.
struct WotsParams {
  int w = 4;

  /// Chains covering the 256-bit message digest.
  size_t message_chains() const { return (256 + w - 1) / w; }
  /// Maximum chunk value = chain length.
  uint32_t chain_len() const { return (1u << w) - 1; }
  /// Chains covering the checksum.
  size_t checksum_chains() const;
  size_t total_chains() const { return message_chains() + checksum_chains(); }
};

/// \brief Advances chains[i] by steps[i] hash applications: chains[i] ←
/// cᵏ(chains[i]) with k = steps[i]. The chains are independent, so instead
/// of walking them one at a time, every still-active chain takes one step
/// per round through the multi-buffer SHA-256 engine (HashManyInto) — the
/// amortization behind both WOTS keygen and batched verification. The
/// result is bit-identical to the sequential walk.
void AdvanceChains(std::vector<Digest>* chains, std::vector<uint32_t> steps);

/// \brief A WOTS signature unpacked into its hash chains: `chains[i]` holds
/// the signature's i-th chain value and `steps[i]` how many applications
/// remain to reach the chain end. After AdvanceChains the folded ends imply
/// the public key. Produced by WinternitzSigner::WalkFromSignature so the
/// batched verifier (crypto::VerifyBatch) can pool chains across many
/// signatures before walking any of them.
struct WotsChainWalk {
  std::vector<Digest> chains;
  std::vector<uint32_t> steps;
};

/// \brief Winternitz one-time signatures (WOTS) with a *compressed* 32-byte
/// public key: pk = H(end₀ ‖ end₁ ‖ … ‖ end_{L−1}).
///
/// The compressed key is what makes WOTS the right leaf primitive for the
/// Merkle signature scheme (merkle_sig.h).
class WinternitzSigner : public Signer {
 public:
  WinternitzSigner(const Bytes& seed, WotsParams params = WotsParams{});

  Result<Bytes> Sign(const Bytes& message) override;
  const Bytes& public_key() const override { return public_key_; }
  SchemeId scheme() const override { return SchemeId::kWinternitz; }
  uint64_t remaining_signatures() const override { return used_ ? 0 : 1; }

  const WotsParams& params() const { return params_; }

  /// Recomputes the compressed public key implied by `signature` on
  /// `message`. The caller compares it against a trusted key (directly or
  /// through a Merkle authentication path).
  static Result<Bytes> PublicKeyFromSignature(const Bytes& message,
                                              const Bytes& signature,
                                              WotsParams params = WotsParams{});

  /// Unpacks `signature` on `message` into its chain walk (no hashing of
  /// the chains yet — the caller runs AdvanceChains, possibly pooled with
  /// other signatures' chains, then folds with FoldPublicKey).
  static Result<WotsChainWalk> WalkFromSignature(const Bytes& message,
                                                 const Bytes& signature,
                                                 WotsParams params = WotsParams{});

  /// Compresses chain ends into the 32-byte public key: H(end₀ ‖ … ‖ endₙ).
  static Bytes FoldPublicKey(const Digest* ends, size_t n);

  /// Verifies against an explicit public key; see crypto::Verify.
  static Status VerifySignature(const Bytes& public_key, const Bytes& message,
                                const Bytes& signature,
                                WotsParams params = WotsParams{});

  /// Splits H(message) into base-2^w chunks followed by checksum chunks.
  /// Exposed for tests.
  static std::vector<uint32_t> Chunks(const Digest& md, const WotsParams& params);

 private:
  WotsParams params_;
  Bytes seed_;
  Bytes public_key_;  // 32 bytes, compressed.
  bool used_ = false;
};

}  // namespace crypto
}  // namespace tcvs
