#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crypto/merkle_sig.h"
#include "crypto/signature.h"
#include "util/untrusted.h"

namespace tcvs {
namespace crypto {

/// Taint-verifier token: the value's signature was checked against a
/// certificate in a KeyStore (KeyStore::VerifyFrom succeeded over the
/// value's canonical preimage). See util/untrusted.h.
struct SignatureVerified {
  TCVS_TAINT_VERIFIER(SignatureVerified);
};

/// Numeric identity of a principal (user id in the protocols).
using PrincipalId = uint32_t;

/// \brief A certificate binding a principal to a public key, signed by the
/// certificate authority (the paper assumes an X.509-style PKI [4]; this is
/// the minimal equivalent).
struct Certificate {
  PrincipalId principal = 0;
  SchemeId scheme = SchemeId::kMerkleSig;
  Bytes public_key;
  Bytes ca_signature;  // CA's signature over Preimage().

  /// Canonical byte string the CA signs.
  Bytes Preimage() const;
};

/// \brief Issues certificates. Holds the CA's (MSS) signing key; its root
/// public key is distributed out of band to every user.
class CertificateAuthority {
 public:
  /// \param seed  deterministic key material
  /// \param height  MSS tree height; the CA can issue 2^height certificates.
  explicit CertificateAuthority(const Bytes& seed, int height = 8);

  /// Issues a certificate for `principal` with the given key.
  Result<Certificate> Issue(PrincipalId principal, SchemeId scheme,
                            const Bytes& public_key);

  /// The CA's root verification key.
  const Bytes& public_key() const { return signer_.public_key(); }

 private:
  MerkleSigner signer_;
};

/// \brief Client-side store of verified certificates, keyed by principal.
///
/// Add() verifies the CA signature before accepting, so everything in the
/// store is trusted; VerifyFrom() then checks a message signature attributed
/// to a principal.
class KeyStore {
 public:
  explicit KeyStore(Bytes ca_public_key) : ca_public_key_(std::move(ca_public_key)) {}

  /// Verifies the certificate against the CA key and stores it.
  /// \return VerificationFailure if the CA signature is invalid;
  ///         AlreadyExists if a different key is already bound.
  Status Add(const Certificate& cert);

  /// Looks up the certificate for `principal`.
  Result<Certificate> Get(PrincipalId principal) const;

  /// Verifies `signature` over `message` as coming from `principal`.
  /// Success justifies endorsing the signed value with SignatureVerified.
  TCVS_ENDORSER Status VerifyFrom(PrincipalId principal, const Bytes& message,
                                  const Bytes& signature) const;

  /// One claim of a VerifyFromBatch call: `signature` over `message`,
  /// attributed to `principal`. Pointers are borrowed for the call only.
  struct SignatureClaim {
    PrincipalId principal = 0;
    const Bytes* message = nullptr;
    const Bytes* signature = nullptr;
  };

  /// Batched VerifyFrom: verifies every claim in one crypto::VerifyBatch
  /// pass, amortizing the hash-chain walks across the whole batch. The
  /// result vector lines up with `claims`; each OK entry justifies
  /// endorsing THAT claim's value with SignatureVerified — exactly the
  /// per-value guarantee VerifyFrom gives, batch or no batch.
  TCVS_ENDORSER std::vector<Status> VerifyFromBatch(
      const std::vector<SignatureClaim>& claims) const;

  size_t size() const { return certs_.size(); }

 private:
  Bytes ca_public_key_;
  std::map<PrincipalId, Certificate> certs_;
};

}  // namespace crypto
}  // namespace tcvs
