#include "crypto/keystore.h"

#include "util/serde.h"

namespace tcvs {
namespace crypto {

Bytes Certificate::Preimage() const {
  util::Writer w;
  w.PutString("tcvs-cert-v1");
  w.PutU32(principal);
  w.PutU8(static_cast<uint8_t>(scheme));
  w.PutBytes(public_key);
  return w.Take();
}

CertificateAuthority::CertificateAuthority(const Bytes& seed, int height)
    : signer_(seed, height) {}

Result<Certificate> CertificateAuthority::Issue(PrincipalId principal,
                                                SchemeId scheme,
                                                const Bytes& public_key) {
  Certificate cert;
  cert.principal = principal;
  cert.scheme = scheme;
  cert.public_key = public_key;
  TCVS_ASSIGN_OR_RETURN(cert.ca_signature, signer_.Sign(cert.Preimage()));
  return cert;
}

Status KeyStore::Add(const Certificate& cert) {
  TCVS_RETURN_NOT_OK(Verify(SchemeId::kMerkleSig, ca_public_key_,
                            cert.Preimage(), cert.ca_signature));
  auto it = certs_.find(cert.principal);
  if (it != certs_.end()) {
    if (it->second.public_key != cert.public_key) {
      return Status::AlreadyExists("principal " + std::to_string(cert.principal) +
                                   " already bound to a different key");
    }
    return Status::OK();
  }
  certs_.emplace(cert.principal, cert);
  return Status::OK();
}

Result<Certificate> KeyStore::Get(PrincipalId principal) const {
  auto it = certs_.find(principal);
  if (it == certs_.end()) {
    return Status::NotFound("no certificate for principal " +
                            std::to_string(principal));
  }
  return it->second;
}

Status KeyStore::VerifyFrom(PrincipalId principal, const Bytes& message,
                            const Bytes& signature) const {
  TCVS_ASSIGN_OR_RETURN(Certificate cert, Get(principal));
  return Verify(cert.scheme, cert.public_key, message, signature);
}

std::vector<Status> KeyStore::VerifyFromBatch(
    const std::vector<SignatureClaim>& claims) const {
  std::vector<Status> results(claims.size(), Status::OK());
  std::vector<VerifyRequest> requests;
  std::vector<size_t> claim_of_request;
  requests.reserve(claims.size());
  claim_of_request.reserve(claims.size());
  for (size_t i = 0; i < claims.size(); ++i) {
    auto it = certs_.find(claims[i].principal);
    if (it == certs_.end()) {
      results[i] = Status::NotFound("no certificate for principal " +
                                    std::to_string(claims[i].principal));
      continue;
    }
    requests.push_back(VerifyRequest{it->second.scheme, &it->second.public_key,
                                     claims[i].message, claims[i].signature});
    claim_of_request.push_back(i);
  }
  std::vector<Status> verified = VerifyBatch(requests);
  for (size_t k = 0; k < verified.size(); ++k) {
    results[claim_of_request[k]] = std::move(verified[k]);
  }
  return results;
}

}  // namespace crypto
}  // namespace tcvs
