#pragma once

#include <set>
#include <string_view>
#include <vector>

#include "mtree/vo.h"
#include "sim/types.h"

namespace tcvs {
namespace core {

/// Which protocol the scenario runs.
enum class ProtocolKind : uint8_t {
  /// No verification at all: plain client/server. Performance floor.
  kPlain = 0,
  /// Per-operation local checks only (VO consistency, per-user counter
  /// monotonicity) with NO external communication — everything a user can do
  /// alone. Exists to demonstrate Theorem 3.1: it cannot detect forks.
  kNoExternalComm = 1,
  /// The §2.2.3 token-passing baseline: pre-specified slots in a fixed user
  /// order, null records when idle. Correct but destroys workload
  /// preservation.
  kTokenBaseline = 2,
  /// Protocol I (§4.2): signed root digests + broadcast sync every k ops.
  kProtocolI = 3,
  /// Protocol II (§4.3): user-tagged XOR state registers, no signatures, no
  /// blocking message.
  kProtocolII = 4,
  /// Protocol II with UNTAGGED fingerprints — the insecure first attempt of
  /// §4.3, vulnerable to the Figure-3 replay. Ablation arm only.
  kProtocolIINaive = 5,
  /// Protocol III (§4.4): epoch-based audit through the server, no broadcast
  /// channel.
  kProtocolIII = 6,
};

std::string_view ProtocolKindToString(ProtocolKind kind);

/// How sync-up reports travel between users (Protocols I/II).
enum class SyncMode : uint8_t {
  /// The paper's scheme: every user broadcasts its report to every other —
  /// Θ(n²) messages per sync-up, O(n) work per client.
  kBroadcast = 0,
  /// Future-work item (2) of the paper: reports are XOR/sum-aggregated up a
  /// static binary tree of users, the root broadcasts the aggregate, and
  /// only matching users answer — Θ(n) messages per sync-up, O(1) work per
  /// client.
  kAggregationTree = 1,
};

std::string_view SyncModeToString(SyncMode mode);

/// Malicious server strategy.
enum class AttackKind : uint8_t {
  kHonest = 0,
  /// Fork / partition attack (Figure 1): from `trigger_round` on, users in
  /// `partition_a` are served one fork and everyone else the other.
  kFork = 1,
  /// Tamper with a committed value (single-user integrity violation): the
  /// first commit at/after `trigger_round` is applied with altered content.
  kTamper = 2,
  /// Drop a committed update (single-user availability violation): the first
  /// commit at/after `trigger_round` is acknowledged but not applied; the
  /// server then forks the victim off the main branch to keep both views
  /// self-consistent.
  kDrop = 3,
  /// Figure-3 replay: transitions of `mirror_source_ops` honest operations
  /// are replayed to the users in `mirror_users`, duplicating (state, ctr)
  /// pairs across users. Defeats untagged XOR registers; caught by tagging.
  kReplaySegment = 4,
  /// Protocol III: withhold one user's stored epoch state from the auditor.
  kOmitEpochState = 5,
  /// Protocol III: substitute a stale (previous-epoch) blob for one user.
  kStaleEpochState = 6,
  /// Availability violation by silence: the server stops answering queries
  /// at the trigger round. Only the b*-bounded-transaction liveness check
  /// can catch this (no response ever arrives to verify).
  kStall = 7,
  /// Rollback (schedule-only): the server reverts its state by `arg`
  /// transitions and continues from the resurrected past — a fork whose
  /// second branch is history itself.
  kRollback = 8,
  /// Equivocation (schedule-only): commits from the victims inside the
  /// active window are applied with altered content while everyone else
  /// sees the honest value — per-operation integrity lies.
  kEquivocate = 9,
  /// Delay (schedule-only): responses to the victims inside the active
  /// window are held back `arg` extra rounds. Not a deviation by itself
  /// (bounded delay is within the model) — campaign noise that perturbs
  /// interleavings and sync timing.
  kDelay = 10,
};

std::string_view AttackKindToString(AttackKind kind);

/// \brief One step of a composed adversarial schedule. The campaign
/// generator (sim/campaign.h) emits randomized sequences of these; the
/// server executes all of them over one run, which is how fork + rollback +
/// replay + equivocation + selective-drop + delay compose into the
/// interleaved adversaries Cachin–Ohrimenko's fork-consistency results say
/// are the interesting ones. When `AttackConfig::schedule` is non-empty it
/// supersedes the single `kind` below.
struct AttackStep {
  /// kFork, kRollback, kReplaySegment, kEquivocate, kDrop, or kDelay.
  AttackKind kind = AttackKind::kHonest;
  /// Round at/after which the step engages.
  sim::Round at = 0;
  /// Active window in rounds for windowed kinds (kEquivocate, kDrop,
  /// kDelay); 0 means one round. One-shot kinds (kFork, kRollback,
  /// kReplaySegment) ignore it.
  sim::Round duration = 0;
  /// Users the step targets. kFork: users routed to the forked branch;
  /// kReplaySegment: users served recorded transitions; kEquivocate /
  /// kDrop / kDelay: users whose operations are affected (empty = all).
  std::set<sim::AgentId> victims;
  /// Kind-specific: kRollback = transitions to revert (≥1); kDelay = extra
  /// rounds to hold responses; kReplaySegment = initial transitions the
  /// replay cursor skips.
  uint64_t arg = 0;
};

struct AttackConfig {
  AttackKind kind = AttackKind::kHonest;
  /// Round at/after which the attack engages.
  sim::Round trigger_round = 0;
  /// kFork: users served the secondary fork.
  std::set<sim::AgentId> partition_a;
  /// kReplaySegment: users whose operations are served from the replay
  /// cursor instead of the live state.
  std::set<sim::AgentId> mirror_users;
  /// kReplaySegment: number of initial honest transitions the replay skips —
  /// the duplicated segment must end at the live head and start at a state
  /// that is still some user's `last` for the untagged evasion to work.
  uint32_t replay_skip = 0;
  /// kOmitEpochState / kStaleEpochState: whose blob to suppress/staleify.
  sim::AgentId victim = 0;
  /// Composed adversarial schedule (campaign generator). Non-empty
  /// supersedes `kind`/`trigger_round`: the server executes every step at
  /// its own round, so one run can fork, roll back, replay, and equivocate
  /// in sequence.
  std::vector<AttackStep> schedule;
};

/// Per-user local clock period for p-partial synchrony (§2.1): a user with
/// period p acts (processes messages, issues operations) only every p-th
/// round. The map is sparse; absent users act every round.
using UserPeriods = std::map<sim::AgentId, sim::Round>;

/// \brief Everything needed to instantiate a scenario: protocol, population,
/// protocol parameters, and the server's (mis)behaviour.
struct ScenarioConfig {
  ProtocolKind protocol = ProtocolKind::kProtocolII;
  uint32_t num_users = 4;
  /// Protocol I/II: sync-up after a user completes k operations since the
  /// last sync (the k of k-bounded deviation detection).
  uint32_t sync_k = 8;
  /// Protocol III / token baseline: rounds per epoch / slot.
  sim::Round epoch_rounds = 50;
  sim::Round slot_rounds = 4;
  mtree::TreeParams tree_params;
  AttackConfig attack;
  /// MSS tree height for user signing keys (2^h signatures per user).
  int user_key_height = 10;
  /// Rounds at which user 1 announces an extra sync-up regardless of k —
  /// experiment control for scripted scenarios (e.g. Figure 3).
  std::vector<sim::Round> forced_syncs;
  /// Report dissemination at sync-up (broadcast vs aggregation tree).
  SyncMode sync_mode = SyncMode::kBroadcast;
  /// Fault localization (paper future-work item 1): each user keeps a ring
  /// buffer of its last `journal_len` transitions and attaches it to sync
  /// reports; on sync failure the evaluator reconstructs the transition
  /// graph and names the earliest inconsistent counter. 0 disables.
  /// Local state stays bounded: the journal length is a constant.
  uint32_t journal_len = 0;
  /// p-partial synchrony bound (§2.1): no user's local clock is slower than
  /// one tick per p rounds. Used to scale protocol timeouts. Per-user actual
  /// periods come from `user_periods`.
  sim::Round partial_sync_p = 1;
  /// Per-user local clock periods (≤ partial_sync_p each); sparse.
  UserPeriods user_periods;
  /// b*-bounded transaction time (§2.1): when nonzero, a user whose
  /// transaction has been outstanding for more than this many rounds reports
  /// an availability violation (the trusted server answers within b*; a
  /// stalling server is deviating). 0 disables the liveness check.
  sim::Round b_star = 0;
  /// Scenario seed for reproducibility bookkeeping: recorded in the
  /// ScenarioReport and appended to every deviation-detection audit event's
  /// detail, so any logged detection names the exact seed that reproduces
  /// it. 0 = unseeded (hand-scripted scenario).
  uint64_t seed = 0;
};

}  // namespace core
}  // namespace tcvs
