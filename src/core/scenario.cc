#include "core/scenario.h"

#include "core/fingerprint.h"
#include "crypto/hmac.h"
#include "util/logging.h"

namespace tcvs {
namespace core {

namespace {
bool NeedsSigners(ProtocolKind protocol) {
  return protocol == ProtocolKind::kProtocolI ||
         protocol == ProtocolKind::kTokenBaseline ||
         protocol == ProtocolKind::kProtocolIII;
}
}  // namespace

std::string_view ProtocolKindToString(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPlain:
      return "Plain";
    case ProtocolKind::kNoExternalComm:
      return "NoExternalComm";
    case ProtocolKind::kTokenBaseline:
      return "TokenBaseline";
    case ProtocolKind::kProtocolI:
      return "ProtocolI";
    case ProtocolKind::kProtocolII:
      return "ProtocolII";
    case ProtocolKind::kProtocolIINaive:
      return "ProtocolIIUntagged";
    case ProtocolKind::kProtocolIII:
      return "ProtocolIII";
  }
  return "Unknown";
}

std::string_view SyncModeToString(SyncMode mode) {
  switch (mode) {
    case SyncMode::kBroadcast:
      return "Broadcast";
    case SyncMode::kAggregationTree:
      return "AggregationTree";
  }
  return "Unknown";
}

std::string_view AttackKindToString(AttackKind kind) {
  switch (kind) {
    case AttackKind::kHonest:
      return "Honest";
    case AttackKind::kFork:
      return "Fork";
    case AttackKind::kTamper:
      return "Tamper";
    case AttackKind::kDrop:
      return "Drop";
    case AttackKind::kReplaySegment:
      return "ReplaySegment";
    case AttackKind::kOmitEpochState:
      return "OmitEpochState";
    case AttackKind::kStaleEpochState:
      return "StaleEpochState";
    case AttackKind::kStall:
      return "Stall";
    case AttackKind::kRollback:
      return "Rollback";
    case AttackKind::kEquivocate:
      return "Equivocate";
    case AttackKind::kDelay:
      return "Delay";
  }
  return "Unknown";
}

Scenario::Scenario(ScenarioConfig config, workload::Workload workload)
    : config_(std::move(config)) {
  const uint32_t n = config_.num_users;
  TCVS_CHECK(workload.size() <= n);
  kernel_.set_run_seed(config_.seed);

  // PKI: a certificate authority plus one MSS signing key per user; every
  // user's key store holds everyone's verified certificate.
  std::map<sim::AgentId, std::shared_ptr<crypto::MerkleSigner>> signers;
  std::shared_ptr<crypto::KeyStore> keystore;
  Bytes initial_sig;
  uint32_t initial_signer = 0;
  if (NeedsSigners(config_.protocol)) {
    crypto::CertificateAuthority ca(util::ToBytes("tcvs-ca-seed"), /*height=*/10);
    keystore = std::make_shared<crypto::KeyStore>(ca.public_key());
    for (uint32_t u = 1; u <= n; ++u) {
      Bytes seed = crypto::Prf(util::ToBytes("tcvs-user-key"), u);
      auto signer = std::make_shared<crypto::MerkleSigner>(
          seed, config_.user_key_height);
      auto cert = ca.Issue(u, crypto::SchemeId::kMerkleSig, signer->public_key());
      TCVS_CHECK_OK(cert.status());
      TCVS_CHECK_OK(keystore->Add(*cert));
      signers[u] = std::move(signer);
    }
    // Protocol I / token baseline initialization: user 1 is elected to sign
    // h(M(D₀) ‖ 0). Protocol III keeps creator 0: its XOR fingerprints tag
    // the initial state with the reserved kInitialCreator id.
    if (config_.protocol == ProtocolKind::kProtocolI ||
        config_.protocol == ProtocolKind::kTokenBaseline) {
      auto sig = signers[1]->Sign(
          SignedStatePreimage(mtree::EmptyRootDigest(), 0));
      TCVS_CHECK_OK(sig.status());
      initial_sig = std::move(sig).ValueOrDie();
      initial_signer = 1;
    }
  }

  server_ = std::make_shared<ProtocolServer>(config_, initial_sig, initial_signer);
  kernel_.AddAgent(sim::kServerId, server_);

  std::map<sim::AgentId, workload::UserScript> scripts;
  for (auto& script : workload) scripts[script.user] = std::move(script);

  for (uint32_t u = 1; u <= n; ++u) {
    ProtocolUser::Options opts;
    opts.config = config_;
    opts.id = u;
    opts.num_users = n;
    auto it = scripts.find(u);
    if (it != scripts.end()) {
      opts.script = std::move(it->second);
    } else {
      opts.script.user = u;  // No scripted ops: passive participant.
    }
    if (NeedsSigners(config_.protocol)) {
      opts.signer = signers[u];
      opts.keystore = keystore;
    }
    opts.trace = &trace_;
    auto user = std::make_shared<ProtocolUser>(std::move(opts));
    users_[u] = user;
    kernel_.AddAgent(u, user);
    kernel_.RegisterUser(u);
  }
}

Scenario::~Scenario() = default;

ScenarioReport Scenario::RunUntilDone(sim::Round max_rounds, sim::Round grace) {
  constexpr sim::Round kSlice = 32;
  sim::SimReport sim_report;
  bool done_seen = false;
  sim::Round done_deadline = 0;
  while (kernel_.now() < max_rounds) {
    sim_report = kernel_.Continue(std::min(kSlice, max_rounds - kernel_.now()));
    if (sim_report.detected) break;
    bool all_done = true;
    for (auto& [id, user] : users_) {
      if (!user->script_done()) {
        all_done = false;
        break;
      }
    }
    if (all_done && !done_seen) {
      done_seen = true;
      done_deadline = kernel_.now() + grace;
    }
    if (done_seen && kernel_.now() >= done_deadline) break;
  }
  return BuildReport(sim_report);
}

ScenarioReport Scenario::Run(sim::Round max_rounds) {
  sim::SimReport sim_report = kernel_.Run(max_rounds);
  return BuildReport(sim_report);
}

ScenarioReport Scenario::BuildReport(const sim::SimReport& sim_report) {

  ScenarioReport report;
  report.detected = sim_report.detected;
  report.detection_round = sim_report.detection_round;
  report.detector = sim_report.detector;
  report.detection_reason = sim_report.detection_reason;
  report.rounds_executed = sim_report.rounds_executed;
  report.traffic = sim_report.traffic;
  report.seed = config_.seed;

  report.attack_engaged_round = server_->attack_engaged_round();
  if (report.detected && report.attack_engaged_round != 0 &&
      report.detection_round >= report.attack_engaged_round) {
    report.detection_delay_rounds =
        report.detection_round - report.attack_engaged_round;
    report.detection_delay_ops = server_->ops_after_attack();
  }

  report.ground_truth_deviation =
      sim::FindDeviation(trace_.records()).has_value();

  uint64_t max_gctr = 0, max_checkpoint = 0;
  for (auto& [id, user] : users_) {
    max_gctr = std::max(max_gctr, user->gctr());
    max_checkpoint = std::max(max_checkpoint, user->checkpoint_gctr());
  }
  report.rollback_ops = max_gctr - max_checkpoint;

  uint64_t latency_sum = 0;
  report.all_scripts_done = true;
  for (auto& [id, user] : users_) {
    report.ops_completed += user->ops_completed();
    latency_sum += user->latency_sum();
    report.max_latency_rounds =
        std::max(report.max_latency_rounds, user->latency_max());
    report.latency.Merge(user->latency_histogram());
    if (!user->script_done()) report.all_scripts_done = false;
  }
  report.avg_latency_rounds =
      report.ops_completed == 0
          ? 0.0
          : static_cast<double>(latency_sum) / report.ops_completed;
  return report;
}

Scenario MakeReplayScenario(bool naive, uint32_t sync_k) {
  // The Figure-3 replay, engineered so the duplicated transitions cancel
  // exactly in the untagged XOR registers:
  //
  //   honest:   S0 -(u2: O1)-> S1 -(u1: O2)-> S2 -(u2: O3)-> S3 -(u3: O4)-> S4
  //   replay:                                 S2 -(u4: O3)-> S3 -(u5: O4)-> S4
  //
  // u1 never operates after O2, so last_{u1} = F(S2, 2). The duplicated
  // segment [S2 → S4] then leaves exactly F(S0,0) ⊕ F(S2,2) in the combined
  // XOR, which matches the untagged sync equation for i = u1 — the server's
  // availability violation (u4 and u5 never see u3's work, and the run has
  // two transactions per counter value) goes UNDETECTED by the untagged
  // variant. With user-tagged fingerprints (real Protocol II) the duplicate
  // states carry different creator tags, the parity argument of Lemma 4.1
  // applies, and the sync-up detects the attack.
  ScenarioConfig config;
  config.protocol =
      naive ? ProtocolKind::kProtocolIINaive : ProtocolKind::kProtocolII;
  config.num_users = 5;
  config.sync_k = sync_k;  // Large enough that only the forced sync fires.
  config.attack.kind = AttackKind::kReplaySegment;
  config.attack.trigger_round = 30;
  config.attack.mirror_users = {4, 5};
  config.attack.replay_skip = 2;  // Skip O1, O2: duplicate only O3, O4.
  config.forced_syncs = {70};

  const Bytes key_x = util::ToBytes("src/x.c");
  const Bytes key_y = util::ToBytes("src/y.c");
  const Bytes key_z = util::ToBytes("src/z.c");
  const Bytes key_w = util::ToBytes("src/w.c");

  workload::Workload w;
  {
    workload::UserScript s;
    s.user = 2;
    s.ops.push_back({2, sim::OpKind::kCommit, key_x, util::ToBytes("A\n")});
    s.ops.push_back({10, sim::OpKind::kCommit, key_z, util::ToBytes("C\n")});
    w.push_back(std::move(s));
  }
  {
    workload::UserScript s;
    s.user = 1;
    s.ops.push_back({6, sim::OpKind::kCommit, key_y, util::ToBytes("B\n")});
    w.push_back(std::move(s));
  }
  {
    workload::UserScript s;
    s.user = 3;
    s.ops.push_back({14, sim::OpKind::kCommit, key_w, util::ToBytes("D\n")});
    w.push_back(std::move(s));
  }
  // Mirror users issue the identical operations O3 and O4 after the trigger;
  // the server replays the recorded pre-states to them.
  {
    workload::UserScript s;
    s.user = 4;
    s.ops.push_back({35, sim::OpKind::kCommit, key_z, util::ToBytes("C\n")});
    w.push_back(std::move(s));
  }
  {
    workload::UserScript s;
    s.user = 5;
    s.ops.push_back({45, sim::OpKind::kCommit, key_w, util::ToBytes("D\n")});
    w.push_back(std::move(s));
  }
  return Scenario(config, std::move(w));
}

}  // namespace core
}  // namespace tcvs
