#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/wire.h"
#include "mtree/btree.h"
#include "sim/kernel.h"

namespace tcvs {
namespace core {

/// \brief The CVS server agent. Configured honest, it implements the paper's
/// protocols faithfully (serial execution in arrival order, pre-state
/// verification objects, counter/signature bookkeeping, epoch storage for
/// Protocol III, blocking signature round-trip for Protocol I). Configured
/// with an AttackConfig, it additionally mounts the corresponding violation
/// — fork/partition (Fig. 1), tamper, drop, Figure-3 replay, or epoch-state
/// suppression — while staying as stealthy as the protocol allows.
///
/// The server is *untrusted*: it holds no user keys and verifies nothing;
/// everything it sends is data the users must check.
class ProtocolServer : public sim::Agent {
 public:
  /// \param initial_sig Protocol I / token baseline: the elected user's
  /// signature over h(M(D₀) ‖ 0), stored on the server before round 1.
  ProtocolServer(ScenarioConfig config, Bytes initial_sig,
                 uint32_t initial_signer);

  void OnRound(sim::RoundContext* ctx) override;

  /// Operations actually executed (all forks combined).
  uint64_t ops_processed() const { return ops_processed_; }

  /// First round at which the attack actually altered processing
  /// (0 = never engaged). Ground truth for detection-delay measurements.
  sim::Round attack_engaged_round() const { return attack_engaged_round_; }

  /// Number of operations (across all users) processed at or after the
  /// round the attack engaged. Detection delay in *operations* is measured
  /// against this.
  uint64_t ops_after_attack() const { return ops_after_attack_; }

 private:
  /// One branch of server state (main history or an attack fork).
  struct Branch {
    mtree::MerkleBTree db;
    uint64_t ctr = 0;
    uint32_t creator = 0;
    Bytes sig;  // Protocol I: current state's signature.

    explicit Branch(const mtree::TreeParams& params) : db(params) {}
  };

  bool UsesBlockingSig() const {
    return config_.protocol == ProtocolKind::kProtocolI ||
           config_.protocol == ProtocolKind::kTokenBaseline;
  }

  void HandleQuery(sim::RoundContext* ctx, const sim::Message& msg);
  void HandleSigUpload(const sim::Message& msg);
  void HandleEpochRequest(sim::RoundContext* ctx, const sim::Message& msg);

  /// \name Composed-schedule attacks (AttackConfig::schedule).
  /// @{
  bool ScheduleMode() const { return !config_.attack.schedule.empty(); }
  /// Activates one-shot steps due this round (fork split, rollback, replay
  /// start) and releases delayed responses whose hold expired.
  void StepSchedule(sim::RoundContext* ctx);
  /// First step of `kind` whose window covers `round` and targets `user`
  /// (empty victims = everyone); nullptr when none is active.
  const AttackStep* ActiveStep(AttackKind kind, sim::Round round,
                               sim::AgentId user) const;
  /// @}

  /// Picks the branch that serves this user under the current attack.
  Branch* RouteBranch(sim::RoundContext* ctx, sim::AgentId user);

  /// Executes `req` against `branch` and sends the response.
  void Execute(sim::RoundContext* ctx, sim::AgentId user, const QueryRequest& req,
               Branch* branch, bool record_replay_history);

  void MarkAttackEngaged(sim::Round round);

  ScenarioConfig config_;
  Branch main_;
  std::optional<Branch> fork_;
  // Protocol I blocking: queries queued while awaiting the signature.
  std::deque<sim::Message> pending_;
  bool awaiting_sig_ = false;
  uint64_t ops_processed_ = 0;
  sim::Round attack_engaged_round_ = 0;
  uint64_t ops_after_attack_ = 0;
  bool one_shot_done_ = false;  // kTamper / kDrop fire once.

  // kReplaySegment: recorded honest transitions and the replay cursor.
  struct ReplayEntry {
    mtree::MerkleBTree pre_db;
    uint64_t ctr;
    uint32_t creator;
    Bytes sig;
  };
  std::vector<ReplayEntry> replay_history_;
  size_t replay_cursor_ = 0;

  // Composed-schedule state. `sched_activated_` marks one-shot steps that
  // already fired; fork victims accumulate across kFork steps; rollback
  // snapshots reuse ReplayEntry (pre-transition state of the main branch),
  // bounded so soak campaigns stay O(1) in history length.
  static constexpr size_t kMaxRollbackLog = 128;
  std::vector<bool> sched_activated_;
  std::set<sim::AgentId> sched_forked_;
  bool sched_replay_serving_ = false;
  std::vector<ReplayEntry> rollback_log_;
  struct DelayedSend {
    sim::Round due = 0;
    sim::AgentId to = 0;
    Bytes payload;
  };
  std::deque<DelayedSend> delayed_;

  // Protocol III: stored signed per-epoch user states.
  std::map<uint64_t, std::map<uint32_t, EpochStateBlob>> epoch_states_;
};

}  // namespace core
}  // namespace tcvs
