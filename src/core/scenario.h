#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/server.h"
#include "core/user.h"
#include "util/histogram.h"
#include "sim/kernel.h"
#include "sim/trace.h"
#include "workload/workload.h"

namespace tcvs {
namespace core {

/// \brief Outcome of one simulated scenario, aggregating protocol detection,
/// ground truth, and performance counters for the experiment harness.
struct ScenarioReport {
  /// Did any user raise the deviation alarm?
  bool detected = false;
  sim::Round detection_round = 0;
  sim::AgentId detector = 0;
  std::string detection_reason;

  /// Round the server's attack first altered processing (0 = honest/never).
  sim::Round attack_engaged_round = 0;
  /// Operations (all users) the server processed after the attack engaged —
  /// the paper's detection-delay metric in operations.
  uint64_t detection_delay_ops = 0;
  /// detection_round − attack_engaged_round (when both nonzero).
  sim::Round detection_delay_rounds = 0;

  /// Ground truth from the trace replay (independent of any protocol).
  bool ground_truth_deviation = false;

  /// Rollback bound: operations executed since the last *successful*
  /// sync-up. On detection, at most this many operations are unverified and
  /// may need rolling back ("limit the amount of rollback", paper §1).
  uint64_t rollback_ops = 0;

  sim::Round rounds_executed = 0;
  uint64_t ops_completed = 0;
  double avg_latency_rounds = 0;
  uint64_t max_latency_rounds = 0;
  /// Merged latency distribution over all users (rounds).
  util::Histogram latency;
  /// All scripted (non-filler) operations finished before the run ended.
  bool all_scripts_done = false;
  sim::TrafficStats traffic;
  /// Seed the scenario was built from (ScenarioConfig::seed; 0 = unseeded).
  /// Carried here so campaign reports and logged detections both name the
  /// exact seed that reproduces the run.
  uint64_t seed = 0;
};

/// \brief Builds and runs one untrusted-CVS scenario: a ProtocolServer
/// (honest or adversarial), one ProtocolUser per workload script, a shared
/// PKI (when the protocol needs one), and the ground-truth trace log.
class Scenario {
 public:
  Scenario(ScenarioConfig config, workload::Workload workload);
  ~Scenario();

  // Agents hold pointers into this object (trace log), so it is pinned.
  // Factory functions still work: prvalue returns are elided since C++17.
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Runs up to `max_rounds` rounds (stops early at first detection).
  ScenarioReport Run(sim::Round max_rounds);

  /// Like Run, but additionally stops (after `grace` further rounds for
  /// in-flight syncs/audits) once every user's script has completed. Use for
  /// performance experiments where the token baseline would otherwise write
  /// null records until the horizon.
  ScenarioReport RunUntilDone(sim::Round max_rounds, sim::Round grace = 64);

  const sim::TraceLog& trace() const { return trace_; }
  ProtocolUser* user(sim::AgentId id) { return users_.at(id).get(); }
  ProtocolServer* server() { return server_.get(); }
  sim::Kernel* kernel() { return &kernel_; }
  const ScenarioConfig& config() const { return config_; }

 private:
  ScenarioReport BuildReport(const sim::SimReport& sim_report);

  ScenarioConfig config_;
  sim::Kernel kernel_;
  sim::TraceLog trace_;
  std::shared_ptr<ProtocolServer> server_;
  std::map<sim::AgentId, std::shared_ptr<ProtocolUser>> users_;
};

/// \brief Builds the Figure-3 replay scenario (experiment F3): users u1/u2
/// commit a scripted sequence, mirror users u3/u4 later issue the identical
/// operations, and the server replays the recorded transitions to them.
/// With `naive` = true the protocol is the untagged-XOR variant the attack
/// defeats; with false it is real Protocol II, which detects it.
Scenario MakeReplayScenario(bool naive, uint32_t sync_k = 6);

}  // namespace core
}  // namespace tcvs
