#include "core/user.h"

#include <algorithm>

#include "core/forensics.h"
#include "util/audit.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace tcvs {
namespace core {

namespace {
const char kNullKey[] = "__token_null__";

uint32_t AuditorOf(uint64_t epoch, uint32_t num_users) {
  return static_cast<uint32_t>(epoch % num_users) + 1;
}
}  // namespace

ProtocolUser::ProtocolUser(Options options) : options_(std::move(options)) {
  sigma_.assign(crypto::kDigestSize, 0);
  last_ = InitialFingerprint(Tagged());
  auto it = options_.config.user_periods.find(options_.id);
  period_ = (it == options_.config.user_periods.end()) ? 1 : it->second;
  if (period_ == 0) period_ = 1;
}

void ProtocolUser::OnRound(sim::RoundContext* ctx) {
  if (dead_) return;

  // p-partial synchrony (§2.1): a user with local-clock period p only acts
  // every p-th round; messages delivered meanwhile queue up unread.
  for (const auto& msg : ctx->inbox()) pending_inbox_.push_back(msg);
  if (period_ > 1 && (ctx->round() + options_.id) % period_ != 0) return;
  std::vector<sim::Message> inbox = std::move(pending_inbox_);
  pending_inbox_.clear();

  // b*-bounded transaction time (§2.1): the trusted server answers every
  // query within b* rounds; an older outstanding transaction means the
  // server is stalling — an availability violation by silence.
  if (options_.config.b_star > 0 && inflight_.has_value() &&
      ctx->round() > inflight_->sent_round + options_.config.b_star) {
    bool response_waiting = false;
    for (const auto& msg : inbox) {
      if (msg.type == kMsgQueryResponse) response_waiting = true;
    }
    if (!response_waiting) {
      ctx->ReportDetection(
          "transaction outstanding beyond b* = " +
          std::to_string(options_.config.b_star) +
          " rounds: server violates bounded transaction time");
      dead_ = true;
      return;
    }
  }

  for (const auto& msg : inbox) {
    switch (msg.type) {
      case kMsgQueryResponse:
        HandleResponse(ctx, msg);
        break;
      case kMsgSyncAnnounce:
        HandleSyncAnnounce(ctx, msg);
        break;
      case kMsgSyncReport:
        HandleSyncReport(ctx, msg);
        break;
      case kMsgAggReport:
        HandleAggReport(ctx, msg);
        break;
      case kMsgAggTotal:
        HandleAggTotal(ctx, msg);
        break;
      case kMsgAggSuccess:
        HandleAggSuccess(ctx, msg);
        break;
      case kMsgEpochStatesReply:
        HandleEpochReply(ctx, msg);
        break;
      default:
        break;
    }
    if (dead_) return;
  }

  // Sync reports owed from before (we were mid-transaction when a sync-up
  // arrived) are sent as soon as the transaction completes.
  if (!inflight_.has_value()) {
    for (auto& [id, sync] : syncs_) {
      if (!sync.reported &&
          options_.config.sync_mode == SyncMode::kBroadcast) {
        SendSyncReport(ctx, &sync);
      }
    }
  }
  EvaluateSyncIfComplete(ctx);
  if (dead_) return;

  // Scripted experiment control: user 1 announces extra sync-ups at the
  // configured rounds once idle.
  if (UsesSync() && options_.id == 1 && syncs_.empty() &&
      !inflight_.has_value() &&
      forced_sync_idx_ < options_.config.forced_syncs.size() &&
      ctx->round() >= options_.config.forced_syncs[forced_sync_idx_]) {
    ++forced_sync_idx_;
    SyncAnnounce announce;
    announce.sync_id = ctx->round();
    ctx->Broadcast(kMsgSyncAnnounce, announce.Serialize());
    StartSync(ctx, announce.sync_id);
  }

  MaybeSendQuery(ctx);
}

void ProtocolUser::MaybeSendQuery(sim::RoundContext* ctx) {
  if (inflight_.has_value()) return;
  // Paper: users do not start a new transaction between the sync-up message
  // and the broadcast of their report.
  if (!syncs_.empty()) return;

  if (options_.config.protocol == ProtocolKind::kTokenBaseline) {
    // Pre-specified slots in a pre-specified user order (§2.2.3). One
    // operation per slot; a null record when the user has nothing to do.
    const sim::Round slot_rounds = options_.config.slot_rounds;
    const uint64_t slot = (ctx->round() - 1) / slot_rounds;
    const uint32_t owner = static_cast<uint32_t>(slot % options_.num_users) + 1;
    if (owner != options_.id) return;
    if (last_slot_sent_.has_value() && *last_slot_sent_ == slot) return;
    last_slot_sent_ = slot;
    if (script_pos_ < options_.script.ops.size() &&
        options_.script.ops[script_pos_].earliest_round <= ctx->round()) {
      const auto& op = options_.script.ops[script_pos_++];
      SendOp(ctx, op, /*is_null=*/false, /*expected_ctr=*/slot,
             op.earliest_round);
    } else {
      workload::ScheduledOp null_op;
      null_op.kind = sim::OpKind::kCheckout;
      null_op.key = util::ToBytes(kNullKey);
      SendOp(ctx, null_op, /*is_null=*/true, /*expected_ctr=*/slot,
             ctx->round());
    }
    return;
  }

  if (script_pos_ >= options_.script.ops.size()) return;
  const auto& op = options_.script.ops[script_pos_];
  if (op.earliest_round > ctx->round()) return;
  ++script_pos_;
  SendOp(ctx, op, /*is_null=*/false, 0, op.earliest_round);
}

void ProtocolUser::SendOp(sim::RoundContext* ctx, const workload::ScheduledOp& op,
                          bool is_null, uint64_t expected_ctr,
                          sim::Round eligible) {
  QueryRequest req;
  req.qid = next_qid_++;
  req.kind = op.kind;
  req.key = op.key;
  req.value = op.value;
  // The query carries this round's trace; the server echoes it, so the
  // response verification (and any deviation it uncovers) joins the trace
  // of the round that issued the op.
  req.trace_id = util::CurrentSpanContext().trace_id;
  if (options_.config.protocol == ProtocolKind::kProtocolIII &&
      !upload_queue_.empty()) {
    req.epoch_upload = upload_queue_.front();
    upload_queue_.erase(upload_queue_.begin());
  }
  Inflight inflight;
  inflight.qid = req.qid;
  inflight.op = op;
  inflight.sent_round = ctx->round();
  inflight.eligible_round = eligible;
  inflight.is_null = is_null;
  inflight.expected_ctr = expected_ctr;
  inflight_ = std::move(inflight);
  ctx->Send(sim::kServerId, kMsgQueryRequest, req.Serialize());
}

bool ProtocolUser::VerifyAndFold(sim::RoundContext* ctx,
                                 util::Tainted<QueryResponse> quarantined,
                                 const Inflight& op,
                                 std::optional<Bytes>* observed) {
  const ProtocolKind protocol = options_.config.protocol;
  observed->reset();
  // Borrow for the verification walk only; dies at the TCVS_ENDORSE below.
  const QueryResponse& resp = quarantined.untrusted();

  if (protocol == ProtocolKind::kPlain) {
    // The deliberately unverified baseline: it believes the reply as-is.
    // That credulity is exactly what the experiments price verification
    // against, so the reply is consumed straight from quarantine.
    if (resp.found) *observed = resp.answer;
    gctr_ = resp.ctr + 1;
    ++lctr_;
    return true;
  }

  // 1. The verification object must be internally consistent; its root is
  //    the server's claimed pre-state digest M(D).
  auto vo_or = mtree::PointVO::Deserialize(resp.vo);
  if (!vo_or.ok()) {
    ctx->ReportDetection("malformed verification object: " +
                         vo_or.status().ToString());
    return false;
  }
  const util::Tainted<mtree::PointVO> vo = std::move(*vo_or);
  auto root_or = mtree::VerifiedRootDigest(vo);
  if (!root_or.ok()) {
    ctx->ReportDetection("inconsistent verification object: " +
                         root_or.status().ToString());
    return false;
  }
  const crypto::Digest pre_root = *root_or;

  // 2. Token baseline: the counter must equal the deterministic slot index
  //    (checked first — a replayed stale state fails here with a precise
  //    diagnosis before its stale-but-legitimate signature is even read).
  if (protocol == ProtocolKind::kTokenBaseline && resp.ctr != op.expected_ctr) {
    ctx->ReportDetection("counter " + std::to_string(resp.ctr) +
                         " does not match slot " +
                         std::to_string(op.expected_ctr));
    return false;
  }

  // 3. Protocol I / token baseline: the claimed state must carry the last
  //    writer's signature over h(M(D) ‖ ctr) — the server cannot forge it.
  if (UsesSignedRoots()) {
    Status st = options_.keystore->VerifyFrom(
        resp.creator, SignedStatePreimage(pre_root, resp.ctr), resp.sig);
    if (!st.ok()) {
      util::AuditEvent event(util::AuditEventKind::kSignatureVerifyFailure);
      event.user = options_.id;
      event.ctr = resp.ctr;
      event.epoch = current_epoch_;
      event.detail = "state signature claimed from user " +
                     std::to_string(resp.creator) + ": " + st.ToString();
      util::AuditLog::Instance().Emit(std::move(event));
      ctx->ReportDetection("illegitimate state signature: " + st.ToString());
      return false;
    }
  }

  // 4. Counter monotonicity (Protocol II step 4): the server may never show
  //    this user a counter older than one it has already seen.
  if (UsesXorRegisters() && resp.ctr < gctr_) {
    util::AuditEvent event(util::AuditEventKind::kCounterRegression);
    event.user = options_.id;
    event.ctr = resp.ctr;
    event.gctr = gctr_;
    event.epoch = current_epoch_;
    event.detail = "server presented counter " + std::to_string(resp.ctr) +
                   " after this user already saw " + std::to_string(gctr_);
    util::AuditLog::Instance().Emit(std::move(event));
    // A regressed counter is fork evidence in itself: the server claims a
    // state on a branch this user already advanced past (a rollback or a
    // replayed segment). Record both sides of the divergence — the
    // fingerprint this user last trusted vs the one the claimed
    // (state, ctr, creator) implies — so the forensic story matches what
    // sync-up fork detection logs.
    util::AuditEvent fork(util::AuditEventKind::kForkDetected);
    fork.user = options_.id;
    fork.ctr = resp.ctr;
    fork.gctr = gctr_;
    fork.epoch = current_epoch_;
    fork.expected_digest = last_;
    fork.actual_digest = Fp(pre_root, resp.ctr, resp.creator);
    fork.detail = "counter regression fork: server resurrected ctr " +
                  std::to_string(resp.ctr) + " behind this user's " +
                  std::to_string(gctr_);
    util::AuditLog::Instance().Emit(std::move(fork));
    ctx->ReportDetection("stale counter " + std::to_string(resp.ctr) +
                         " (already saw " + std::to_string(gctr_) + ")");
    return false;
  }

  // 5. Protocol III: epoch sanity against the user's own clock, then the
  //    epoch-boundary snapshot (taken BEFORE folding this transaction).
  if (protocol == ProtocolKind::kProtocolIII) {
    const uint64_t own_epoch = ctx->round() / options_.config.epoch_rounds;
    if (resp.epoch + 1 < own_epoch || resp.epoch > own_epoch) {
      ctx->ReportDetection("server epoch " + std::to_string(resp.epoch) +
                           " inconsistent with local clock epoch " +
                           std::to_string(own_epoch));
      return false;
    }
    if (resp.epoch > current_epoch_) {
      EpochStateBlob blob;
      blob.user = options_.id;
      blob.epoch = current_epoch_;
      blob.sigma = sigma_;
      blob.last = last_;
      auto sig = options_.signer->Sign(blob.Preimage());
      if (!sig.ok()) {
        // Key exhausted: this user leaves the system (failures are out of
        // scope per the paper; experiments must size keys for their runs).
        TCVS_LOG(Warn) << "user " << options_.id
                       << " signing key exhausted; leaving";
        dead_ = true;
        return false;
      }
      blob.signature = std::move(sig).ValueOrDie();
      upload_queue_.push_back(std::move(blob));
      sigma_.assign(crypto::kDigestSize, 0);
      current_epoch_ = resp.epoch;
    }
  }

  // 6. Verify the answer / replay the update against the claimed pre-state
  //    to obtain the post-state digest M(D′).
  crypto::Digest post_root = pre_root;
  switch (op.op.kind) {
    case sim::OpKind::kCheckout: {
      auto value_or = mtree::VerifyPointRead(pre_root, options_.config.tree_params,
                                             op.op.key, vo);
      if (!value_or.ok()) {
        ctx->ReportDetection("checkout VO rejected: " +
                             value_or.status().ToString());
        return false;
      }
      // The loose answer fields must agree with the authenticated result.
      if (value_or->has_value() != resp.found ||
          (resp.found && **value_or != resp.answer)) {
        ctx->ReportDetection("server answer contradicts verification object");
        return false;
      }
      *observed = *value_or;
      break;
    }
    case sim::OpKind::kCommit: {
      auto post_or = mtree::VerifyAndApplyUpsert(
          pre_root, options_.config.tree_params, op.op.key, op.op.value, vo);
      if (!post_or.ok()) {
        ctx->ReportDetection("commit VO rejected: " + post_or.status().ToString());
        return false;
      }
      post_root = *post_or;
      break;
    }
    case sim::OpKind::kDelete: {
      auto post_or = mtree::VerifyAndApplyDelete(
          pre_root, options_.config.tree_params, op.op.key, vo);
      if (post_or.ok()) {
        post_root = *post_or;
      } else if (post_or.status().IsNotFound()) {
        post_root = pre_root;  // Authenticated no-op.
      } else {
        ctx->ReportDetection("delete VO rejected: " + post_or.status().ToString());
        return false;
      }
      break;
    }
  }

  // 7. Every check passed: endorse the reply out of quarantine, then fold
  //    into the protocol registers (and the bounded fault-localization
  //    journal when enabled). The fold must read only the endorsed copy.
  const QueryResponse verified =
      TCVS_ENDORSE(std::move(quarantined), mtree::VoVerified{});
  // `resp` dangles past this point — do not touch it.
  if (UsesXorRegisters()) {
    const crypto::Digest pre_fp = Fp(pre_root, verified.ctr, verified.creator);
    const crypto::Digest post_fp = Fp(post_root, verified.ctr + 1, options_.id);
    sigma_ = XorBytes(sigma_, pre_fp);
    sigma_ = XorBytes(sigma_, post_fp);
    last_ = post_fp;
    if (options_.config.journal_len > 0) {
      journal_.push_back(TransitionRecord{pre_fp, post_fp, verified.ctr,
                                          verified.creator, options_.id});
      if (journal_.size() > options_.config.journal_len) {
        journal_.erase(journal_.begin());
      }
    }
  }
  gctr_ = verified.ctr + 1;
  ++lctr_;

  // 8. Protocol I / token baseline: return the signed new state to the
  //    server (the blocking extra message of §4.2).
  if (UsesSignedRoots()) {
    RootSigUpload up;
    up.user = options_.id;
    up.ctr_after = verified.ctr + 1;
    auto sig =
        options_.signer->Sign(SignedStatePreimage(post_root, verified.ctr + 1));
    if (!sig.ok()) {
      TCVS_LOG(Warn) << "user " << options_.id
                     << " signing key exhausted; leaving";
      dead_ = true;
      return false;
    }
    up.sig = std::move(sig).ValueOrDie();
    ctx->Send(sim::kServerId, kMsgRootSigUpload, up.Serialize());
  }
  return true;
}

void ProtocolUser::HandleResponse(sim::RoundContext* ctx,
                                  const sim::Message& msg) {
  auto resp_or = QueryResponse::Deserialize(msg.payload);
  if (!resp_or.ok()) {
    ctx->ReportDetection("malformed response: " + resp_or.status().ToString());
    dead_ = true;
    return;
  }
  util::Tainted<QueryResponse> quarantined = std::move(*resp_or);
  // Borrow for dispatch only (trace join + in-flight matching); the full
  // verification happens inside VerifyAndFold before anything is believed.
  const QueryResponse& resp = quarantined.untrusted();
  // Re-enter the trace of the query this response answers: verification
  // spans and audit events below pivot back to the originating exchange.
  util::ScopedTraceContext trace_ctx(resp.trace_id, 0);
  TCVS_SPAN("core.user.handle_response");
  if (!inflight_.has_value() || inflight_->qid != resp.qid) {
    ctx->ReportDetection("response to a query this user never issued");
    dead_ = true;
    return;
  }
  // Captured by value before the reply moves into VerifyAndFold; only
  // recorded in the ground-truth trace once verification succeeded.
  const uint64_t server_seq = resp.ctr;
  Inflight op = std::move(*inflight_);
  inflight_.reset();

  std::optional<Bytes> observed;
  if (!VerifyAndFold(ctx, std::move(quarantined), op, &observed)) {
    dead_ = true;
    return;
  }
  // `resp` dangles past the move above — do not touch it.

  if (!op.is_null) {
    ++ops_completed_;
    uint64_t latency = ctx->round() - op.eligible_round;
    latency_sum_ += latency;
    latency_max_ = std::max(latency_max_, latency);
    latency_hist_.Record(latency);
    if (options_.trace != nullptr) {
      sim::OpRecord record;
      record.user = options_.id;
      record.issued = op.sent_round;
      record.completed = ctx->round();
      record.kind = op.op.kind;
      record.key = op.op.key;
      record.value = op.op.value;
      record.observed = observed;
      record.server_seq = server_seq;
      options_.trace->Record(std::move(record));
    }
    ++ops_since_sync_;
  }

  MaybeAnnounceSync(ctx);
  MaybeRequestAudit(ctx);
}

void ProtocolUser::MaybeAnnounceSync(sim::RoundContext* ctx) {
  if (!UsesSync()) return;
  if (!syncs_.empty()) return;  // Already syncing.
  if (ops_since_sync_ < options_.config.sync_k) return;
  // First user to complete k operations announces the sync-up (§4.2).
  SyncAnnounce announce;
  announce.sync_id = ctx->round();
  ctx->Broadcast(kMsgSyncAnnounce, announce.Serialize());
  StartSync(ctx, announce.sync_id);
}

void ProtocolUser::StartSync(sim::RoundContext* ctx, uint64_t sync_id) {
  SyncState& sync = syncs_[sync_id];
  sync.sync_id = sync_id;
  if (options_.config.sync_mode == SyncMode::kBroadcast) {
    if (!inflight_.has_value()) SendSyncReport(ctx, &sync);
    // Otherwise the report goes out when the current txn completes.
  } else {
    StepTreeSync(ctx);
  }
}

void ProtocolUser::SendSyncReport(sim::RoundContext* ctx, SyncState* sync) {
  if (sync->reported) return;
  SyncReport report;
  report.sync_id = sync->sync_id;
  report.user = options_.id;
  report.lctr = lctr_;
  report.gctr = gctr_;
  report.sigma = sigma_;
  report.last = last_;
  report.journal = journal_;
  ctx->Broadcast(kMsgSyncReport, report.Serialize());
  // The user's own report joins the pool through the same quarantine type as
  // everyone else's — the evaluation treats all reports alike.
  sync->reports.insert_or_assign(options_.id,
                                 util::Tainted<SyncReport>(std::move(report)));
  sync->reported = true;
}

void ProtocolUser::HandleSyncAnnounce(sim::RoundContext* ctx,
                                      const sim::Message& msg) {
  if (!UsesSync()) return;
  auto ann_or = SyncAnnounce::Deserialize(msg.payload);
  if (!ann_or.ok()) return;
  // An announce only names a sync id (a round number); nothing to verify.
  const uint64_t sync_id = ann_or->untrusted().sync_id;
  if (syncs_.count(sync_id) > 0) return;  // Duplicate announce.
  StartSync(ctx, sync_id);
}

void ProtocolUser::HandleSyncReport(sim::RoundContext* ctx,
                                    const sim::Message& msg) {
  if (!UsesSync()) return;
  auto rep_or = SyncReport::Deserialize(msg.payload);
  if (!rep_or.ok()) return;
  const uint64_t sync_id = rep_or->untrusted().sync_id;
  const uint32_t from_user = rep_or->untrusted().user;
  auto it = syncs_.find(sync_id);
  if (it == syncs_.end()) return;  // Already evaluated; late duplicate.
  // Pooled still quarantined; the sync-up evaluation is the verifier.
  it->second.reports.insert_or_assign(from_user, std::move(*rep_or));
  (void)ctx;
}

void ProtocolUser::FinishSyncSuccess(sim::RoundContext* ctx,
                                     uint64_t sync_id) {
  static util::Counter* const completed =
      util::MetricsRegistry::Instance().GetCounter(
          "core.sync.completed_total");
  static util::LatencyHistogram* const duration =
      util::MetricsRegistry::Instance().GetLatency("core.sync.duration_rounds");
  completed->Increment();
  // sync_id is the announce round, so this is the end-to-end sync-up lag.
  if (ctx != nullptr && ctx->round() >= sync_id) {
    duration->Record(ctx->round() - sync_id);
  }
  syncs_.erase(sync_id);
  ops_since_sync_ = 0;
  // Everything verified up to the counters covered by this sync: advance the
  // rollback checkpoint.
  checkpoint_gctr_ = gctr_;
}

// ---------------------------------------------------------------------------
// Aggregation-tree sync (future-work extension; see SyncMode).
// Users form a static binary heap: user i's children are 2i and 2i+1, its
// parent is i/2, user 1 is the root.
// ---------------------------------------------------------------------------

void ProtocolUser::StepTreeSync(sim::RoundContext* ctx) {
  if (options_.config.sync_mode != SyncMode::kAggregationTree) return;
  std::vector<uint64_t> ids;
  for (const auto& [id, sync] : syncs_) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = syncs_.find(id);
    if (it == syncs_.end()) continue;
    StepTreeSyncOne(ctx, &it->second);
    if (dead_) return;
  }
}

void ProtocolUser::StepTreeSyncOne(sim::RoundContext* ctx, SyncState* sync_ptr) {
  SyncState& sync = *sync_ptr;

  // Phase 1 (leaves → root): once idle and all children reported, fold and
  // forward the subtree aggregate.
  if (!sync.reported && !inflight_.has_value()) {
    uint32_t left = 2 * options_.id;
    uint32_t right = 2 * options_.id + 1;
    bool have_left = left > options_.num_users || sync.child_aggs.count(left);
    bool have_right = right > options_.num_users || sync.child_aggs.count(right);
    if (have_left && have_right) {
      AggReport agg;
      agg.sync_id = sync.sync_id;
      agg.user = options_.id;
      agg.sigma_xor = sigma_;
      agg.lctr_sum = lctr_;
      for (const auto& [child, quarantined] : sync.child_aggs) {
        // Child aggregates fold into this subtree's aggregate unverified —
        // only the final total-vs-register match check can vouch for them.
        const AggReport& report = quarantined.untrusted();
        agg.sigma_xor = XorBytes(agg.sigma_xor, report.sigma_xor);
        agg.lctr_sum += report.lctr_sum;
      }
      sync.reported = true;
      if (options_.id == 1) {
        // Root: the aggregate is the total; disseminate it.
        AggTotal total;
        total.sync_id = sync.sync_id;
        total.sigma_total = agg.sigma_xor;
        total.lctr_total = agg.lctr_sum;
        ctx->Broadcast(kMsgAggTotal, total.Serialize());
        sync.total_received = true;
        sync.sigma_total = total.sigma_total;
        sync.lctr_total = total.lctr_total;
        sync.success_deadline = ctx->round() + 4 + 2 * options_.config.num_users;
      } else {
        ctx->Send(options_.id / 2, kMsgAggReport, agg.Serialize());
      }
    }
  }

  // Phase 2 (total → everyone): check the local match condition; a matching
  // user announces success.
  if (sync.total_received && sync.success_deadline.has_value()) {
    bool match;
    if (options_.config.protocol == ProtocolKind::kProtocolI) {
      match = (gctr_ == sync.lctr_total);
    } else {
      match = (XorBytes(InitialFingerprint(Tagged()), last_) == sync.sigma_total);
    }
    if (match) {
      AggSuccess success;
      success.sync_id = sync.sync_id;
      success.user = options_.id;
      ctx->Broadcast(kMsgAggSuccess, success.Serialize());
      FinishSyncSuccess(ctx, sync.sync_id);
      return;
    }
    if (ctx->round() >= *sync.success_deadline) {
      ctx->ReportDetection(
          "sync-up (aggregation tree) failed: no user's state matches the "
          "aggregate — server deviated");
      dead_ = true;
    }
  }
}

void ProtocolUser::HandleAggReport(sim::RoundContext* ctx,
                                   const sim::Message& msg) {
  auto agg_or = AggReport::Deserialize(msg.payload);
  if (!agg_or.ok()) return;
  const uint64_t sync_id = agg_or->untrusted().sync_id;
  const uint32_t from_user = agg_or->untrusted().user;
  auto it = syncs_.find(sync_id);
  if (it == syncs_.end()) return;
  it->second.child_aggs.insert_or_assign(from_user, std::move(*agg_or));
  (void)ctx;
}

void ProtocolUser::HandleAggTotal(sim::RoundContext* ctx,
                                  const sim::Message& msg) {
  auto total_or = AggTotal::Deserialize(msg.payload);
  if (!total_or.ok()) return;
  // The claimed total is only *stored*; believing it happens in the match
  // check of StepTreeSyncOne, whose failure kills the client, not its state.
  const AggTotal& total = total_or->untrusted();
  auto it = syncs_.find(total.sync_id);
  if (it == syncs_.end()) return;
  it->second.total_received = true;
  it->second.sigma_total = total.sigma_total;
  it->second.lctr_total = total.lctr_total;
  it->second.success_deadline =
      ctx->round() + 4 + 2 * options_.config.num_users;  // Delay-tolerant.
}

void ProtocolUser::HandleAggSuccess(sim::RoundContext* ctx,
                                    const sim::Message& msg) {
  auto success_or = AggSuccess::Deserialize(msg.payload);
  if (!success_or.ok()) return;
  const uint64_t sync_id = success_or->untrusted().sync_id;
  if (syncs_.count(sync_id) == 0) return;
  FinishSyncSuccess(ctx, sync_id);
}

void ProtocolUser::EvaluateSyncIfComplete(sim::RoundContext* ctx) {
  if (options_.config.sync_mode == SyncMode::kAggregationTree) {
    StepTreeSync(ctx);
    return;
  }
  std::vector<uint64_t> ready;
  for (const auto& [id, sync] : syncs_) {
    if (sync.reported && sync.reports.size() >= options_.num_users) {
      ready.push_back(id);
    }
  }
  for (uint64_t id : ready) {
    EvaluateBroadcastSync(ctx, id);
    if (dead_) return;
  }
}

void ProtocolUser::EvaluateBroadcastSync(sim::RoundContext* ctx, uint64_t id) {
  SyncState& sync = syncs_.at(id);
  bool success = false;
  uint64_t lctr_total = 0;
  // The pooled reports are consumed straight from quarantine: the pooled
  // check below IS their verification — it either passes (some user's state
  // explains the pool) or kills the client. No register is folded from them.
  for (const auto& [user, report] : sync.reports) {
    lctr_total += report.untrusted().lctr;
  }
  // Protocol II divergence evidence, captured for the audit trail: this
  // user's expected pooled XOR vs the one actually observed.
  Bytes expected_x;
  Bytes actual_x;
  if (options_.config.protocol == ProtocolKind::kProtocolI) {
    for (const auto& [user, report] : sync.reports) {
      if (report.untrusted().gctr == lctr_total) {
        success = true;
        break;
      }
    }
  } else {
    Bytes x(crypto::kDigestSize, 0);
    for (const auto& [user, report] : sync.reports) {
      if (report.untrusted().sigma.size() != crypto::kDigestSize) {
        ctx->ReportDetection("malformed sync report");
        dead_ = true;
        return;
      }
      x = XorBytes(x, report.untrusted().sigma);
    }
    const Bytes f0 = InitialFingerprint(Tagged());
    expected_x = XorBytes(f0, last_);
    actual_x = x;
    for (const auto& [user, report] : sync.reports) {
      if (XorBytes(f0, report.untrusted().last) == x) {
        success = true;
        break;
      }
    }
  }

  if (!success) {
    {
      util::AuditEvent event(util::AuditEventKind::kSyncUpFail);
      event.user = options_.id;
      event.ctr = gctr_;
      event.epoch = current_epoch_;
      event.gctr = gctr_;
      event.lctr_sum = lctr_total;
      event.detail = "sync-up check failed: no user's state explains the "
                     "pooled reports";
      util::AuditLog::Instance().Emit(std::move(event));
    }
    {
      // The paper's fork signal: no user's (f0 XOR last) accounts for the
      // pooled register XOR, so at least two users were shown diverging
      // histories. Record both sides of the divergence.
      util::AuditEvent event(util::AuditEventKind::kForkDetected);
      event.user = options_.id;
      event.ctr = gctr_;
      event.epoch = current_epoch_;
      event.gctr = gctr_;
      event.lctr_sum = lctr_total;
      event.expected_digest = expected_x;
      event.actual_digest = actual_x;
      event.detail = "fork/partition detected at sync " + std::to_string(id);
      util::AuditLog::Instance().Emit(std::move(event));
    }
    std::string reason = "sync-up check failed: server deviated";
    if (options_.config.journal_len > 0) {
      // Fault localization (future-work extension): pool the bounded
      // journals from all reports and name the earliest inconsistent
      // counter.
      std::vector<TransitionRecord> pooled;
      for (const auto& [user, report] : sync.reports) {
        pooled.insert(pooled.end(), report.untrusted().journal.begin(),
                      report.untrusted().journal.end());
      }
      if (auto fault = LocalizeFault(pooled); fault.has_value()) {
        util::AuditEvent event(util::AuditEventKind::kForensicsLocalized);
        event.user = options_.id;
        event.ctr = fault->first_bad_ctr;
        event.epoch = current_epoch_;
        event.detail = fault->explanation;
        util::AuditLog::Instance().Emit(std::move(event));
        reason += "; first fault at counter " +
                  std::to_string(fault->first_bad_ctr) + " (" +
                  fault->explanation + ")";
      }
    }
    ctx->ReportDetection(reason);
    dead_ = true;
    return;
  }
  {
    util::AuditEvent event(util::AuditEventKind::kSyncUpPass);
    event.user = options_.id;
    event.ctr = gctr_;
    event.epoch = current_epoch_;
    event.gctr = gctr_;
    event.lctr_sum = lctr_total;
    util::AuditLog::Instance().Emit(std::move(event));
  }
  FinishSyncSuccess(ctx, id);
}

void ProtocolUser::MaybeRequestAudit(sim::RoundContext* ctx) {
  if (options_.config.protocol != ProtocolKind::kProtocolIII) return;
  if (audit_inflight_epoch_.has_value()) return;
  if (current_epoch_ < 2) return;
  // Audit epochs become actionable two epochs later (§4.4, point C).
  while (next_audit_epoch_ + 2 <= current_epoch_) {
    uint64_t e = next_audit_epoch_;
    if (AuditorOf(e, options_.num_users) == options_.id) {
      static util::Counter* const audits =
          util::MetricsRegistry::Instance().GetCounter(
              "core.audit.requests_total");
      static util::LatencyHistogram* const lag =
          util::MetricsRegistry::Instance().GetLatency(
              "core.audit.epoch_lag_epochs");
      audits->Increment();
      // How far behind the current epoch this audit runs: the epoch
      // detection lag the paper's §4.4 audit schedule induces.
      lag->Record(current_epoch_ - e);
      EpochStatesRequest req;
      req.epoch = e;
      ctx->Send(sim::kServerId, kMsgEpochStatesRequest, req.Serialize());
      audit_inflight_epoch_ = e;
      ++next_audit_epoch_;
      return;  // One audit in flight at a time.
    }
    ++next_audit_epoch_;
  }
}

void ProtocolUser::HandleEpochReply(sim::RoundContext* ctx,
                                    const sim::Message& msg) {
  if (options_.config.protocol != ProtocolKind::kProtocolIII) return;
  auto reply_or = EpochStatesReply::Deserialize(msg.payload);
  if (!reply_or.ok()) {
    ctx->ReportDetection("malformed epoch-state reply");
    dead_ = true;
    return;
  }
  // The reply is a bag of stored blobs; each blob is endorsed individually
  // below, once its owner's signature verifies. The envelope itself carries
  // nothing trustworthy beyond the epoch it claims to answer.
  const EpochStatesReply& reply = reply_or->untrusted();
  if (!audit_inflight_epoch_.has_value() ||
      reply.epoch != *audit_inflight_epoch_) {
    return;
  }
  const uint64_t e = reply.epoch;
  audit_inflight_epoch_.reset();

  // Collect and authenticate one blob per user for epoch e. All owner
  // signatures in the reply verify in ONE batched pass (the hash-chain
  // walks share the multi-buffer engine); the endorsement stays per-blob —
  // each SignatureVerified token corresponds to exactly one OK verdict.
  auto collect = [&](const std::vector<EpochStateBlob>& blobs, uint64_t epoch,
                     std::map<uint32_t, EpochStateBlob>* out) -> Status {
    std::vector<Bytes> preimages;
    preimages.reserve(blobs.size());
    for (const auto& blob : blobs) {
      if (blob.epoch != epoch) {
        return Status::VerificationFailure(
            "stored state carries wrong epoch tag");
      }
      preimages.push_back(blob.Preimage());
    }
    std::vector<crypto::KeyStore::SignatureClaim> claims;
    claims.reserve(blobs.size());
    for (size_t i = 0; i < blobs.size(); ++i) {
      claims.push_back({blobs[i].user, &preimages[i], &blobs[i].signature});
    }
    const std::vector<Status> verdicts =
        options_.keystore->VerifyFromBatch(claims);
    for (size_t i = 0; i < blobs.size(); ++i) {
      TCVS_RETURN_NOT_OK(verdicts[i]);
      // The owner's signature is the verification — the server is only a
      // blob store here, so SignatureVerified endorses each blob alone.
      EpochStateBlob verified =
          TCVS_ENDORSE(util::Tainted<EpochStateBlob>(blobs[i]),
                       crypto::SignatureVerified{});
      if (out->count(verified.user) > 0 && (*out)[verified.user] != verified) {
        return Status::VerificationFailure("conflicting stored states");
      }
      (*out)[verified.user] = std::move(verified);
    }
    if (out->size() != options_.num_users) {
      return Status::VerificationFailure(
          "missing stored epoch state for some user");
    }
    return Status::OK();
  };

  std::map<uint32_t, EpochStateBlob> states;
  Status st = collect(reply.states, e, &states);
  if (!st.ok()) {
    ctx->ReportDetection("epoch " + std::to_string(e) + " audit: " +
                         st.ToString());
    dead_ = true;
    return;
  }
  std::map<uint32_t, EpochStateBlob> prev;
  std::vector<Bytes> prev_lasts;
  if (e == 0) {
    prev_lasts.push_back(InitialFingerprint(/*tagged=*/true));
  } else {
    st = collect(reply.prev_states, e - 1, &prev);
    if (!st.ok()) {
      ctx->ReportDetection("epoch " + std::to_string(e) +
                           " audit (previous epoch states): " + st.ToString());
      dead_ = true;
      return;
    }
    for (const auto& [user, blob] : prev) prev_lasts.push_back(blob.last);
  }

  Bytes x(crypto::kDigestSize, 0);
  for (const auto& [user, blob] : states) x = XorBytes(x, blob.sigma);

  bool success = false;
  for (const auto& p : prev_lasts) {
    for (const auto& [user, blob] : states) {
      if (XorBytes(p, blob.last) == x) {
        success = true;
        break;
      }
    }
    if (success) break;
  }
  if (!success) {
    ctx->ReportDetection("epoch " + std::to_string(e) +
                         " audit failed: state transitions do not form a "
                         "single path");
    dead_ = true;
    return;
  }
}

}  // namespace core
}  // namespace tcvs
