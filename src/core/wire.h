#pragma once

#include <optional>
#include <vector>

#include "sim/trace.h"
#include "sim/types.h"
#include "util/result.h"
#include "util/untrusted.h"

namespace tcvs {
namespace core {

/// Taint-verifier token for the *server/simulator side* of the wire: a
/// client-originated frame was structurally parsed and is consumed by a
/// party that is itself outside the TCB (the untrusted server executes
/// whatever it is asked; its misbehaviour is what the clients detect).
/// Client-side consumption of server-originated frames must NOT use this —
/// it endorses no cryptographic property.
struct FrameChecked {
  TCVS_TAINT_VERIFIER(FrameChecked);
};

/// Structural endorsement for the server/simulator side (see FrameChecked).
template <typename T>
TCVS_ENDORSER T AcceptClientFrame(util::Tainted<T> frame) {
  return TCVS_ENDORSE(std::move(frame), FrameChecked{});
}

/// Message type tags used on the simulated network.
enum MsgType : uint32_t {
  kMsgQueryRequest = 1,
  kMsgQueryResponse = 2,
  /// Protocol I step 6: the user's signature over the new state, returned to
  /// the server (the blocking extra message).
  kMsgRootSigUpload = 3,
  /// Broadcast channel: sync-up trigger (Protocols I/II).
  kMsgSyncAnnounce = 10,
  /// Broadcast channel: a user's sync report (lctr/gctr or σ/last).
  kMsgSyncReport = 11,
  /// Aggregation-tree sync (future-work extension): child → parent partial
  /// aggregate, root → all total, matching user → all success.
  kMsgAggReport = 12,
  kMsgAggTotal = 13,
  kMsgAggSuccess = 14,
  /// Protocol III: auditor asks the server for stored epoch states.
  kMsgEpochStatesRequest = 20,
  kMsgEpochStatesReply = 21,
};

/// \brief One verified transition as remembered in a user's bounded journal
/// (fault-localization extension): fingerprints of the pre/post states, the
/// counter, the creator the server claimed for the pre-state, and the user
/// who performed the transition.
struct TransitionRecord {
  Bytes pre;
  Bytes post;
  uint64_t ctr = 0;           // Pre-state counter; the transition is c → c+1.
  uint32_t claimed_creator = 0;
  uint32_t user = 0;

  bool operator==(const TransitionRecord&) const = default;
};

/// \brief Protocol III: one user's signed per-epoch local state (σ, last),
/// deposited on the untrusted server during the following epoch.
struct EpochStateBlob {
  uint32_t user = 0;
  uint64_t epoch = 0;
  Bytes sigma;
  Bytes last;
  Bytes signature;

  /// Canonical bytes the user signs (everything but the signature).
  Bytes Preimage() const;

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<EpochStateBlob>> Deserialize(const Bytes& data);

  bool operator==(const EpochStateBlob&) const = default;
};

/// \brief Query wire version. v2 prefixes both query messages with this
/// byte and appends the causal trace id; v1 frames (no version byte) are no
/// longer accepted — the simulated network has no cross-version peers.
inline constexpr uint8_t kQueryWireVersion = 2;

/// \brief User → server: one CVS operation (checkout / commit / delete) on a
/// data item. Protocol III queries may piggyback the previous epoch's signed
/// state blob (paper §4.4 step 2).
struct QueryRequest {
  uint64_t qid = 0;
  sim::OpKind kind = sim::OpKind::kCheckout;
  Bytes key;
  Bytes value;
  std::optional<EpochStateBlob> epoch_upload;
  /// Causal trace of the round that issued the query (0 = untraced).
  uint64_t trace_id = 0;

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<QueryRequest>> Deserialize(const Bytes& data);
};

/// \brief Server → user: the paper's Φ = (Q(D), v(Q,D), ctr, j, sig), plus
/// the epoch number for Protocol III.
struct QueryResponse {
  uint64_t qid = 0;
  sim::OpKind kind = sim::OpKind::kCheckout;
  /// Checkout answer (meaningful only for checkouts).
  bool found = false;
  Bytes answer;
  /// Serialized mtree::PointVO for the pre-state path (empty under kPlain).
  Bytes vo;
  uint64_t ctr = 0;
  /// j — the user whose operation created the current state.
  uint32_t creator = 0;
  /// Protocol I: sig_j(h(M(D) ‖ ctr)). Empty in other protocols.
  Bytes sig;
  /// Protocol III: the server's epoch number.
  uint64_t epoch = 0;
  /// Echo of the query's trace id, so the user's verification of this
  /// response (and any deviation it uncovers) joins the originating trace.
  uint64_t trace_id = 0;

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<QueryResponse>> Deserialize(const Bytes& data);
};

/// \brief Protocol I: user → server, sign_i(h(M(D′) ‖ ctr+1)).
struct RootSigUpload {
  uint32_t user = 0;
  uint64_t ctr_after = 0;
  Bytes sig;

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<RootSigUpload>> Deserialize(const Bytes& data);
};

/// \brief Broadcast: "sync-up" announcement (the announcing user's report is
/// broadcast separately like everyone else's).
struct SyncAnnounce {
  uint64_t sync_id = 0;

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<SyncAnnounce>> Deserialize(const Bytes& data);
};

/// \brief Broadcast: one user's synchronization report. Protocol I consumes
/// (lctr, gctr); Protocol II consumes (σ, last). Both are included so the
/// scenario layer can run either check.
struct SyncReport {
  uint64_t sync_id = 0;
  uint32_t user = 0;
  uint64_t lctr = 0;
  uint64_t gctr = 0;
  Bytes sigma;
  Bytes last;
  /// Fault-localization journal (bounded; empty when disabled).
  std::vector<TransitionRecord> journal;

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<SyncReport>> Deserialize(const Bytes& data);
};

/// \brief Aggregation-tree sync: the partial aggregate of the subtree rooted
/// at `user` (XOR of σ registers; sum of lctr counters).
struct AggReport {
  uint64_t sync_id = 0;
  uint32_t user = 0;
  Bytes sigma_xor;
  uint64_t lctr_sum = 0;

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<AggReport>> Deserialize(const Bytes& data);
};

/// \brief Aggregation-tree sync: the root's total, sent to every user.
struct AggTotal {
  uint64_t sync_id = 0;
  Bytes sigma_total;
  uint64_t lctr_total = 0;

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<AggTotal>> Deserialize(const Bytes& data);
};

/// \brief Aggregation-tree sync: "my local state matches the total" — at
/// least one user must say so or the server deviated.
struct AggSuccess {
  uint64_t sync_id = 0;
  uint32_t user = 0;

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<AggSuccess>> Deserialize(const Bytes& data);
};

/// \brief Protocol III: auditor → server, "give me the stored states of
/// epoch e and the lasts of epoch e−1".
struct EpochStatesRequest {
  uint64_t epoch = 0;

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<EpochStatesRequest>> Deserialize(const Bytes& data);
};

/// \brief Protocol III: server → auditor reply.
struct EpochStatesReply {
  uint64_t epoch = 0;
  std::vector<EpochStateBlob> states;       // Epoch e blobs.
  std::vector<EpochStateBlob> prev_states;  // Epoch e−1 blobs (for S_init).

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<EpochStatesReply>> Deserialize(const Bytes& data);
};

}  // namespace core
}  // namespace tcvs
