#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/wire.h"

namespace tcvs {
namespace core {

/// \brief Localized fault: the earliest operation counter at which the
/// combined transition journals are inconsistent with a single serial
/// execution, plus a human-readable explanation.
struct FaultHypothesis {
  uint64_t first_bad_ctr = 0;
  std::string explanation;
};

/// \brief Fault localization (paper future-work item 1: "detect exactly when
/// the fault occurred").
///
/// Input: the union of all users' bounded transition journals (each record:
/// pre/post state fingerprints, counter, claimed creator). A correct server
/// produces one transition per counter, chaining post(c) = pre(c+1) and
/// creator(c→c+1) = the user that performed transition c→c+1. The function
/// reports the earliest counter violating any of:
///
///   * two different transitions claim the same counter (fork / replay),
///   * adjacent journaled transitions do not chain (tamper / drop),
///   * the claimed creator of a pre-state contradicts the journaled
///     performer of the previous transition.
///
/// Journals are bounded ring buffers, so localization is approximate: it
/// names the earliest fault *visible in the retained window*. With journal
/// length L ≥ the sync period k, every post-deviation transition since the
/// last (clean) sync is retained and the localization is exact.
///
/// \return nullopt when the journals are consistent (the deviation predates
/// the retained window, or there is none).
std::optional<FaultHypothesis> LocalizeFault(
    const std::vector<TransitionRecord>& transitions);

}  // namespace core
}  // namespace tcvs
