#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace tcvs {
namespace core {

/// \brief The state-transition multigraph of Protocol II's correctness
/// argument (paper Lemma 4.1), made executable.
///
/// Vertices are state fingerprints; a directed edge (u → v) is one verified
/// transition some user observed. The lemma: a directed graph with
///
///   P1. no isolated vertices,
///   P2. in-degree ≤ 1 everywhere,
///   P3. no directed cycles,
///   P4. exactly two vertices of odd total degree, one of them with
///       in-degree 0,
///
/// is a single directed path. Protocol II's sync-up establishes P4 via the
/// XOR registers, P2 via user tagging + counter monotonicity, P3 via the
/// counter increasing along edges; P1 holds by construction. The test suite
/// uses this module to check the lemma itself on randomized graphs and to
/// cross-validate the protocol: every honest run's transition graph is a
/// path, every successful attack run's graph is not.
class TransitionGraph {
 public:
  /// Adds one transition (pre-state fingerprint → post-state fingerprint).
  void AddEdge(const Bytes& from, const Bytes& to);

  size_t num_edges() const { return num_edges_; }
  size_t num_vertices() const { return adjacency_.size(); }

  /// \name The four properties of Lemma 4.1.
  /// @{
  bool HasNoIsolatedVertices() const;  // P1 (trivially true for edge-built graphs).
  bool InDegreeAtMostOne() const;      // P2
  bool IsAcyclic() const;              // P3
  /// P4: exactly two odd-total-degree vertices, one with in-degree 0.
  bool OddDegreeConditionHolds() const;
  /// @}

  /// All four properties at once.
  bool SatisfiesLemmaPreconditions() const {
    return HasNoIsolatedVertices() && InDegreeAtMostOne() && IsAcyclic() &&
           OddDegreeConditionHolds();
  }

  /// Is the graph one directed path visiting every edge (the lemma's
  /// conclusion), checked directly by walking from the unique source?
  bool IsSingleDirectedPath() const;

  /// Human-readable verdict for diagnostics.
  std::string Describe() const;

 private:
  struct VertexInfo {
    std::vector<size_t> out;  // Target vertex indices (multi-edges allowed).
    size_t in_degree = 0;
  };

  size_t InternVertex(const Bytes& fingerprint);

  std::map<Bytes, size_t> index_;
  std::vector<VertexInfo> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace core
}  // namespace tcvs
