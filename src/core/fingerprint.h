#pragma once

#include "crypto/sha256.h"
#include "mtree/vo.h"
#include "util/bytes.h"

namespace tcvs {
namespace core {

/// Reserved "creator" id of the initial database state D₀ (no user made it).
inline constexpr uint32_t kInitialCreator = 0;

/// \brief XOR of two equal-length byte strings (the σ-register accumulation
/// of Protocols II/III). Mismatched lengths are a programming error.
Bytes XorBytes(const Bytes& a, const Bytes& b);

/// \brief State fingerprint h(M(D) ‖ ctr ‖ creator) of Protocol II: the
/// database root digest, the operation counter, and the id of the user whose
/// operation produced this state. Tagging states with their creating user is
/// what forces in-degree ≤ 1 in the state-transition graph (Lemma 4.1 P2)
/// and defeats the Figure-3 replay.
crypto::Digest StateFingerprint(const crypto::Digest& root, uint64_t ctr,
                                uint32_t creator);

/// \brief Untagged fingerprint h(M(D) ‖ ctr): the "first attempt" the paper
/// shows insecure via the Figure-3 scenario. Kept as the ablation arm of
/// experiment F3.
crypto::Digest StateFingerprintUntagged(const crypto::Digest& root, uint64_t ctr);

/// \brief Fingerprint of the initial state (D₀, ctr=0), common knowledge to
/// all users.
crypto::Digest InitialFingerprint(bool tagged);

/// \brief Preimage the last writer signs in Protocol I: h(M(D) ‖ ctr).
Bytes SignedStatePreimage(const crypto::Digest& root, uint64_t ctr);

}  // namespace core
}  // namespace tcvs
