#include "core/fingerprint.h"

#include "util/logging.h"
#include "util/serde.h"

namespace tcvs {
namespace core {

Bytes XorBytes(const Bytes& a, const Bytes& b) {
  TCVS_CHECK(a.size() == b.size());
  Bytes out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

crypto::Digest StateFingerprint(const crypto::Digest& root, uint64_t ctr,
                                uint32_t creator) {
  util::Writer w;
  w.PutRaw(root);
  w.PutU64(ctr);
  w.PutU32(creator);
  return crypto::Sha256::Hash(w.buffer());
}

crypto::Digest StateFingerprintUntagged(const crypto::Digest& root, uint64_t ctr) {
  util::Writer w;
  w.PutRaw(root);
  w.PutU64(ctr);
  return crypto::Sha256::Hash(w.buffer());
}

crypto::Digest InitialFingerprint(bool tagged) {
  crypto::Digest m0 = mtree::EmptyRootDigest();
  return tagged ? StateFingerprint(m0, 0, kInitialCreator)
                : StateFingerprintUntagged(m0, 0);
}

Bytes SignedStatePreimage(const crypto::Digest& root, uint64_t ctr) {
  util::Writer w;
  w.PutString("tcvs-p1-state");
  w.PutRaw(root);
  w.PutU64(ctr);
  return crypto::Sha256::Hash(w.buffer());
}

}  // namespace core
}  // namespace tcvs
