#include "core/graph_check.h"

#include <algorithm>

namespace tcvs {
namespace core {

size_t TransitionGraph::InternVertex(const Bytes& fingerprint) {
  auto it = index_.find(fingerprint);
  if (it != index_.end()) return it->second;
  size_t id = adjacency_.size();
  index_.emplace(fingerprint, id);
  adjacency_.push_back(VertexInfo{});
  return id;
}

void TransitionGraph::AddEdge(const Bytes& from, const Bytes& to) {
  size_t u = InternVertex(from);
  size_t v = InternVertex(to);
  adjacency_[u].out.push_back(v);
  adjacency_[v].in_degree += 1;
  ++num_edges_;
}

bool TransitionGraph::HasNoIsolatedVertices() const {
  for (const auto& v : adjacency_) {
    if (v.out.empty() && v.in_degree == 0) return false;
  }
  return true;
}

bool TransitionGraph::InDegreeAtMostOne() const {
  for (const auto& v : adjacency_) {
    if (v.in_degree > 1) return false;
  }
  return true;
}

bool TransitionGraph::IsAcyclic() const {
  // Kahn's algorithm: the graph is acyclic iff every vertex is peeled.
  std::vector<size_t> in_degree(adjacency_.size());
  for (size_t i = 0; i < adjacency_.size(); ++i) {
    in_degree[i] = adjacency_[i].in_degree;
  }
  std::vector<size_t> frontier;
  for (size_t i = 0; i < adjacency_.size(); ++i) {
    if (in_degree[i] == 0) frontier.push_back(i);
  }
  size_t peeled = 0;
  while (!frontier.empty()) {
    size_t u = frontier.back();
    frontier.pop_back();
    ++peeled;
    for (size_t v : adjacency_[u].out) {
      if (--in_degree[v] == 0) frontier.push_back(v);
    }
  }
  return peeled == adjacency_.size();
}

bool TransitionGraph::OddDegreeConditionHolds() const {
  size_t odd = 0;
  bool some_odd_source = false;
  for (const auto& v : adjacency_) {
    size_t total = v.out.size() + v.in_degree;
    if (total % 2 == 1) {
      ++odd;
      if (v.in_degree == 0) some_odd_source = true;
    }
  }
  return odd == 2 && some_odd_source;
}

bool TransitionGraph::IsSingleDirectedPath() const {
  if (adjacency_.empty()) return true;  // Zero transitions: trivially a path.
  // A single directed path over all edges: walk from the unique source,
  // consuming one out-edge per step, and cover every edge and vertex.
  std::optional<size_t> source;
  for (size_t i = 0; i < adjacency_.size(); ++i) {
    if (adjacency_[i].in_degree == 0) {
      if (source.has_value()) return false;  // Two sources.
      source = i;
    }
    if (adjacency_[i].out.size() > 1) return false;  // Branching.
    if (adjacency_[i].in_degree > 1) return false;   // Merging.
  }
  if (!source.has_value()) return false;  // No source: a cycle.
  size_t steps = 0;
  size_t cur = *source;
  std::vector<bool> seen(adjacency_.size(), false);
  while (true) {
    if (seen[cur]) return false;
    seen[cur] = true;
    if (adjacency_[cur].out.empty()) break;
    cur = adjacency_[cur].out[0];
    ++steps;
  }
  return steps == num_edges_ &&
         size_t(std::count(seen.begin(), seen.end(), true)) == adjacency_.size();
}

std::string TransitionGraph::Describe() const {
  std::string out = "graph{vertices=" + std::to_string(num_vertices()) +
                    ", edges=" + std::to_string(num_edges()) + ", P1=" +
                    (HasNoIsolatedVertices() ? "ok" : "FAIL") + ", P2=" +
                    (InDegreeAtMostOne() ? "ok" : "FAIL") + ", P3=" +
                    (IsAcyclic() ? "ok" : "FAIL") + ", P4=" +
                    (OddDegreeConditionHolds() ? "ok" : "FAIL") + ", path=" +
                    (IsSingleDirectedPath() ? "yes" : "no") + "}";
  return out;
}

}  // namespace core
}  // namespace tcvs
