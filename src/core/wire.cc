#include "core/wire.h"

#include "util/serde.h"

namespace tcvs {
namespace core {

namespace {

/// Raw field parser shared by EpochStateBlob::Deserialize and the composite
/// messages that embed blobs (QueryRequest, EpochStatesReply). Internal
/// composition stays on plain structs; only the *public* Deserialize entry
/// points quarantine, so a nested blob is not double-wrapped.
Result<EpochStateBlob> ParseEpochStateBlob(const Bytes& data) {
  util::Reader r(data);
  EpochStateBlob b;
  TCVS_ASSIGN_OR_RETURN(b.user, r.GetU32());
  TCVS_ASSIGN_OR_RETURN(b.epoch, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(b.sigma, r.GetBytes());
  TCVS_ASSIGN_OR_RETURN(b.last, r.GetBytes());
  TCVS_ASSIGN_OR_RETURN(b.signature, r.GetBytes());
  return b;
}

}  // namespace

Bytes EpochStateBlob::Preimage() const {
  util::Writer w;
  w.PutString("tcvs-p3-epoch-state");
  w.PutU32(user);
  w.PutU64(epoch);
  w.PutBytes(sigma);
  w.PutBytes(last);
  return w.Take();
}

Bytes EpochStateBlob::Serialize() const {
  util::Writer w;
  w.PutU32(user);
  w.PutU64(epoch);
  w.PutBytes(sigma);
  w.PutBytes(last);
  w.PutBytes(signature);
  return w.Take();
}

Result<util::Tainted<EpochStateBlob>> EpochStateBlob::Deserialize(
    const Bytes& data) {
  TCVS_ASSIGN_OR_RETURN(EpochStateBlob b, ParseEpochStateBlob(data));
  return util::Tainted<EpochStateBlob>(std::move(b));
}

Bytes QueryRequest::Serialize() const {
  util::Writer w;
  w.PutU8(kQueryWireVersion);
  w.PutU64(qid);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutBytes(key);
  w.PutBytes(value);
  w.PutU8(epoch_upload.has_value() ? 1 : 0);
  if (epoch_upload.has_value()) w.PutBytes(epoch_upload->Serialize());
  w.PutU64(trace_id);
  return w.Take();
}

Result<util::Tainted<QueryRequest>> QueryRequest::Deserialize(
    const Bytes& data) {
  util::Reader r(data);
  QueryRequest q;
  TCVS_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kQueryWireVersion) {
    return Status::InvalidArgument("unsupported query wire version");
  }
  TCVS_ASSIGN_OR_RETURN(q.qid, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind > 2) return Status::InvalidArgument("bad op kind");
  q.kind = static_cast<sim::OpKind>(kind);
  TCVS_ASSIGN_OR_RETURN(q.key, r.GetBytes());
  TCVS_ASSIGN_OR_RETURN(q.value, r.GetBytes());
  TCVS_ASSIGN_OR_RETURN(uint8_t has_upload, r.GetU8());
  if (has_upload) {
    TCVS_ASSIGN_OR_RETURN(Bytes blob, r.GetBytes());
    TCVS_ASSIGN_OR_RETURN(EpochStateBlob b, ParseEpochStateBlob(blob));
    q.epoch_upload = std::move(b);
  }
  TCVS_ASSIGN_OR_RETURN(q.trace_id, r.GetU64());
  return util::Tainted<QueryRequest>(std::move(q));
}

Bytes QueryResponse::Serialize() const {
  util::Writer w;
  w.PutU8(kQueryWireVersion);
  w.PutU64(qid);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutU8(found ? 1 : 0);
  w.PutBytes(answer);
  w.PutBytes(vo);
  w.PutU64(ctr);
  w.PutU32(creator);
  w.PutBytes(sig);
  w.PutU64(epoch);
  w.PutU64(trace_id);
  return w.Take();
}

Result<util::Tainted<QueryResponse>> QueryResponse::Deserialize(
    const Bytes& data) {
  util::Reader r(data);
  QueryResponse q;
  TCVS_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kQueryWireVersion) {
    return Status::InvalidArgument("unsupported query wire version");
  }
  TCVS_ASSIGN_OR_RETURN(q.qid, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind > 2) return Status::InvalidArgument("bad op kind");
  q.kind = static_cast<sim::OpKind>(kind);
  TCVS_ASSIGN_OR_RETURN(uint8_t found, r.GetU8());
  q.found = (found != 0);
  TCVS_ASSIGN_OR_RETURN(q.answer, r.GetBytes());
  TCVS_ASSIGN_OR_RETURN(q.vo, r.GetBytes());
  TCVS_ASSIGN_OR_RETURN(q.ctr, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(q.creator, r.GetU32());
  TCVS_ASSIGN_OR_RETURN(q.sig, r.GetBytes());
  TCVS_ASSIGN_OR_RETURN(q.epoch, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(q.trace_id, r.GetU64());
  return util::Tainted<QueryResponse>(std::move(q));
}

Bytes RootSigUpload::Serialize() const {
  util::Writer w;
  w.PutU32(user);
  w.PutU64(ctr_after);
  w.PutBytes(sig);
  return w.Take();
}

Result<util::Tainted<RootSigUpload>> RootSigUpload::Deserialize(
    const Bytes& data) {
  util::Reader r(data);
  RootSigUpload u;
  TCVS_ASSIGN_OR_RETURN(u.user, r.GetU32());
  TCVS_ASSIGN_OR_RETURN(u.ctr_after, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(u.sig, r.GetBytes());
  return util::Tainted<RootSigUpload>(std::move(u));
}

Bytes SyncAnnounce::Serialize() const {
  util::Writer w;
  w.PutU64(sync_id);
  return w.Take();
}

Result<util::Tainted<SyncAnnounce>> SyncAnnounce::Deserialize(
    const Bytes& data) {
  util::Reader r(data);
  SyncAnnounce a;
  TCVS_ASSIGN_OR_RETURN(a.sync_id, r.GetU64());
  return util::Tainted<SyncAnnounce>(std::move(a));
}

Bytes SyncReport::Serialize() const {
  util::Writer w;
  w.PutU64(sync_id);
  w.PutU32(user);
  w.PutU64(lctr);
  w.PutU64(gctr);
  w.PutBytes(sigma);
  w.PutBytes(last);
  w.PutU32(static_cast<uint32_t>(journal.size()));
  for (const auto& t : journal) {
    w.PutBytes(t.pre);
    w.PutBytes(t.post);
    w.PutU64(t.ctr);
    w.PutU32(t.claimed_creator);
    w.PutU32(t.user);
  }
  return w.Take();
}

Result<util::Tainted<SyncReport>> SyncReport::Deserialize(const Bytes& data) {
  util::Reader r(data);
  SyncReport s;
  TCVS_ASSIGN_OR_RETURN(s.sync_id, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(s.user, r.GetU32());
  TCVS_ASSIGN_OR_RETURN(s.lctr, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(s.gctr, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(s.sigma, r.GetBytes());
  TCVS_ASSIGN_OR_RETURN(s.last, r.GetBytes());
  TCVS_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  if (n > 1u << 16) return Status::InvalidArgument("journal too long");
  for (uint32_t i = 0; i < n; ++i) {
    TransitionRecord t;
    TCVS_ASSIGN_OR_RETURN(t.pre, r.GetBytes());
    TCVS_ASSIGN_OR_RETURN(t.post, r.GetBytes());
    TCVS_ASSIGN_OR_RETURN(t.ctr, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(t.claimed_creator, r.GetU32());
    TCVS_ASSIGN_OR_RETURN(t.user, r.GetU32());
    s.journal.push_back(std::move(t));
  }
  return util::Tainted<SyncReport>(std::move(s));
}

Bytes AggReport::Serialize() const {
  util::Writer w;
  w.PutU64(sync_id);
  w.PutU32(user);
  w.PutBytes(sigma_xor);
  w.PutU64(lctr_sum);
  return w.Take();
}

Result<util::Tainted<AggReport>> AggReport::Deserialize(const Bytes& data) {
  util::Reader r(data);
  AggReport a;
  TCVS_ASSIGN_OR_RETURN(a.sync_id, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(a.user, r.GetU32());
  TCVS_ASSIGN_OR_RETURN(a.sigma_xor, r.GetBytes());
  TCVS_ASSIGN_OR_RETURN(a.lctr_sum, r.GetU64());
  return util::Tainted<AggReport>(std::move(a));
}

Bytes AggTotal::Serialize() const {
  util::Writer w;
  w.PutU64(sync_id);
  w.PutBytes(sigma_total);
  w.PutU64(lctr_total);
  return w.Take();
}

Result<util::Tainted<AggTotal>> AggTotal::Deserialize(const Bytes& data) {
  util::Reader r(data);
  AggTotal a;
  TCVS_ASSIGN_OR_RETURN(a.sync_id, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(a.sigma_total, r.GetBytes());
  TCVS_ASSIGN_OR_RETURN(a.lctr_total, r.GetU64());
  return util::Tainted<AggTotal>(std::move(a));
}

Bytes AggSuccess::Serialize() const {
  util::Writer w;
  w.PutU64(sync_id);
  w.PutU32(user);
  return w.Take();
}

Result<util::Tainted<AggSuccess>> AggSuccess::Deserialize(const Bytes& data) {
  util::Reader r(data);
  AggSuccess a;
  TCVS_ASSIGN_OR_RETURN(a.sync_id, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(a.user, r.GetU32());
  return util::Tainted<AggSuccess>(std::move(a));
}

Bytes EpochStatesRequest::Serialize() const {
  util::Writer w;
  w.PutU64(epoch);
  return w.Take();
}

Result<util::Tainted<EpochStatesRequest>> EpochStatesRequest::Deserialize(
    const Bytes& data) {
  util::Reader r(data);
  EpochStatesRequest q;
  TCVS_ASSIGN_OR_RETURN(q.epoch, r.GetU64());
  return util::Tainted<EpochStatesRequest>(std::move(q));
}

Bytes EpochStatesReply::Serialize() const {
  util::Writer w;
  w.PutU64(epoch);
  w.PutU32(static_cast<uint32_t>(states.size()));
  for (const auto& s : states) w.PutBytes(s.Serialize());
  w.PutU32(static_cast<uint32_t>(prev_states.size()));
  for (const auto& s : prev_states) w.PutBytes(s.Serialize());
  return w.Take();
}

Result<util::Tainted<EpochStatesReply>> EpochStatesReply::Deserialize(
    const Bytes& data) {
  util::Reader r(data);
  EpochStatesReply reply;
  TCVS_ASSIGN_OR_RETURN(reply.epoch, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  for (uint32_t i = 0; i < n; ++i) {
    TCVS_ASSIGN_OR_RETURN(Bytes blob, r.GetBytes());
    TCVS_ASSIGN_OR_RETURN(EpochStateBlob b, ParseEpochStateBlob(blob));
    reply.states.push_back(std::move(b));
  }
  TCVS_ASSIGN_OR_RETURN(uint32_t m, r.GetU32());
  for (uint32_t i = 0; i < m; ++i) {
    TCVS_ASSIGN_OR_RETURN(Bytes blob, r.GetBytes());
    TCVS_ASSIGN_OR_RETURN(EpochStateBlob b, ParseEpochStateBlob(blob));
    reply.prev_states.push_back(std::move(b));
  }
  return util::Tainted<EpochStatesReply>(std::move(reply));
}

}  // namespace core
}  // namespace tcvs
