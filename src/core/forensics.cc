#include "core/forensics.h"

#include <algorithm>
#include <map>

namespace tcvs {
namespace core {

std::optional<FaultHypothesis> LocalizeFault(
    const std::vector<TransitionRecord>& transitions) {
  std::vector<const TransitionRecord*> ordered;
  ordered.reserve(transitions.size());
  for (const auto& t : transitions) ordered.push_back(&t);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TransitionRecord* a, const TransitionRecord* b) {
                     return a->ctr < b->ctr;
                   });

  std::optional<FaultHypothesis> best;
  auto propose = [&](uint64_t ctr, std::string why) {
    if (!best.has_value() || ctr < best->first_bad_ctr) {
      best = FaultHypothesis{ctr, std::move(why)};
    }
  };

  for (size_t i = 0; i < ordered.size(); ++i) {
    const TransitionRecord& t = *ordered[i];
    // Duplicate counter: two transactions in the same serial position.
    if (i + 1 < ordered.size() && ordered[i + 1]->ctr == t.ctr) {
      const TransitionRecord& u = *ordered[i + 1];
      if (!(t == u)) {
        propose(t.ctr, "two different transitions at counter " +
                           std::to_string(t.ctr) + " (users " +
                           std::to_string(t.user) + " and " +
                           std::to_string(u.user) + "): fork or replay");
      }
    }
    // Chain check against the next retained counter.
    if (i + 1 < ordered.size() && ordered[i + 1]->ctr == t.ctr + 1) {
      const TransitionRecord& next = *ordered[i + 1];
      if (next.pre != t.post) {
        propose(t.ctr + 1,
                "state entering counter " + std::to_string(t.ctr + 1) +
                    " does not match the state produced at counter " +
                    std::to_string(t.ctr) + ": tampered or dropped update");
      }
      if (next.claimed_creator != t.user) {
        propose(t.ctr + 1,
                "server claimed user " + std::to_string(next.claimed_creator) +
                    " created the state at counter " +
                    std::to_string(t.ctr + 1) + " but user " +
                    std::to_string(t.user) + " performed that transition");
      }
    }
  }
  return best;
}

}  // namespace core
}  // namespace tcvs
