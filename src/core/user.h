#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/fingerprint.h"
#include "core/wire.h"
#include "crypto/keystore.h"
#include "crypto/merkle_sig.h"
#include "util/histogram.h"
#include "sim/kernel.h"
#include "sim/trace.h"
#include "workload/workload.h"

namespace tcvs {
namespace core {

/// \brief A CVS user agent. Drives its workload script through the
/// configured protocol, performing every client-side verification step the
/// paper specifies:
///
/// * VO verification and local replay of updates (all protocols but kPlain),
/// * signature verification of the last writer's signed root (Protocol I and
///   the token baseline),
/// * counter monotonicity (gctr), σ/last register maintenance
///   (Protocols II/III, tagged or untagged),
/// * broadcast sync-up participation every k operations (Protocols I/II),
/// * per-epoch state snapshots, signed uploads, and the rotating audit
///   (Protocol III),
/// * slot discipline and slot/counter equality (token baseline).
///
/// Local state is O(1) in the database size and in the history length
/// (desideratum §2.2.5): a few counters, two digests, and the signing key.
class ProtocolUser : public sim::Agent {
 public:
  struct Options {
    ScenarioConfig config;
    sim::AgentId id = 1;
    uint32_t num_users = 1;
    workload::UserScript script;
    /// Signing key (Protocol I / token baseline / Protocol III); null
    /// otherwise.
    std::shared_ptr<crypto::MerkleSigner> signer;
    /// Verified directory of all users' public keys; null when unused.
    std::shared_ptr<const crypto::KeyStore> keystore;
    /// Shared ground-truth log (may be null).
    sim::TraceLog* trace = nullptr;
  };

  explicit ProtocolUser(Options options);

  void OnRound(sim::RoundContext* ctx) override;

  /// \name Statistics for the experiment harness.
  /// @{
  uint64_t ops_completed() const { return ops_completed_; }
  uint64_t lctr() const { return lctr_; }
  uint64_t gctr() const { return gctr_; }
  /// Sum over completed ops of (completion round − eligible round).
  uint64_t latency_sum() const { return latency_sum_; }
  uint64_t latency_max() const { return latency_max_; }
  /// Full latency distribution (rounds).
  const util::Histogram& latency_histogram() const { return latency_hist_; }
  /// True once every scripted operation has completed (a token-baseline
  /// null record in flight does not count — those continue forever).
  bool script_done() const {
    return script_pos_ >= options_.script.ops.size() &&
           (!inflight_.has_value() || inflight_->is_null);
  }
  const Bytes& sigma() const { return sigma_; }
  const Bytes& last() const { return last_; }
  /// @}

 private:
  struct Inflight {
    uint64_t qid;
    workload::ScheduledOp op;
    sim::Round sent_round;
    sim::Round eligible_round;
    bool is_null = false;       // Token baseline filler record.
    uint64_t expected_ctr = 0;  // Token baseline: ctr must equal slot index.
  };

  struct SyncState {
    uint64_t sync_id = 0;
    bool reported = false;
    /// Quarantine pools: peer reports arrive off the (adversary-scheduled)
    /// network and stay Tainted until the sync-up evaluation — which is
    /// itself the verification that consumes them. The pooled XOR check
    /// never feeds a register; it only passes or kills the client.
    std::map<uint32_t, util::Tainted<SyncReport>> reports;
    // Aggregation-tree mode:
    std::map<uint32_t, util::Tainted<AggReport>> child_aggs;
    bool total_received = false;
    Bytes sigma_total;
    uint64_t lctr_total = 0;
    std::optional<sim::Round> success_deadline;
  };

  bool UsesSync() const {
    ProtocolKind p = options_.config.protocol;
    return p == ProtocolKind::kProtocolI || p == ProtocolKind::kProtocolII ||
           p == ProtocolKind::kProtocolIINaive;
  }
  bool UsesXorRegisters() const {
    ProtocolKind p = options_.config.protocol;
    return p == ProtocolKind::kProtocolII ||
           p == ProtocolKind::kProtocolIINaive ||
           p == ProtocolKind::kProtocolIII ||
           p == ProtocolKind::kNoExternalComm;
  }
  bool Tagged() const {
    return options_.config.protocol != ProtocolKind::kProtocolIINaive;
  }
  bool UsesSignedRoots() const {
    ProtocolKind p = options_.config.protocol;
    return p == ProtocolKind::kProtocolI || p == ProtocolKind::kTokenBaseline;
  }

  crypto::Digest Fp(const crypto::Digest& root, uint64_t ctr,
                    uint32_t creator) const {
    return Tagged() ? StateFingerprint(root, ctr, creator)
                    : StateFingerprintUntagged(root, ctr);
  }

  void HandleResponse(sim::RoundContext* ctx, const sim::Message& msg);
  void HandleSyncAnnounce(sim::RoundContext* ctx, const sim::Message& msg);
  void HandleSyncReport(sim::RoundContext* ctx, const sim::Message& msg);
  void HandleEpochReply(sim::RoundContext* ctx, const sim::Message& msg);

  void HandleAggReport(sim::RoundContext* ctx, const sim::Message& msg);
  void HandleAggTotal(sim::RoundContext* ctx, const sim::Message& msg);
  void HandleAggSuccess(sim::RoundContext* ctx, const sim::Message& msg);

  void MaybeSendQuery(sim::RoundContext* ctx);
  void SendOp(sim::RoundContext* ctx, const workload::ScheduledOp& op,
              bool is_null, uint64_t expected_ctr, sim::Round eligible);
  void MaybeAnnounceSync(sim::RoundContext* ctx);
  void StartSync(sim::RoundContext* ctx, uint64_t sync_id);
  void SendSyncReport(sim::RoundContext* ctx, SyncState* sync);
  void EvaluateSyncIfComplete(sim::RoundContext* ctx);
  void EvaluateBroadcastSync(sim::RoundContext* ctx, uint64_t id);
  /// Aggregation-tree mode: forward the subtree aggregate once idle and all
  /// child aggregates arrived; evaluate totals and deadlines.
  void StepTreeSync(sim::RoundContext* ctx);
  void StepTreeSyncOne(sim::RoundContext* ctx, SyncState* sync);
  /// Marks the sync complete. `ctx` is used only for observability: in the
  /// simulator `sync_id` is the announce round, so completion round minus
  /// sync_id is the sync-up duration.
  void FinishSyncSuccess(sim::RoundContext* ctx, uint64_t sync_id);
  void MaybeRequestAudit(sim::RoundContext* ctx);

  /// Verifies a quarantined response and folds it into local state: the
  /// reply is borrowed for the checks and endorsed (mtree::VoVerified) only
  /// after every one passes; the register fold reads the endorsed copy.
  /// On any verification failure, reports detection and returns false.
  bool VerifyAndFold(sim::RoundContext* ctx,
                     util::Tainted<QueryResponse> resp, const Inflight& op,
                     std::optional<Bytes>* observed);

  Options options_;
  uint64_t next_qid_ = 1;
  size_t script_pos_ = 0;
  std::optional<Inflight> inflight_;

  // Protocol registers.
  uint64_t lctr_ = 0;
  uint64_t gctr_ = 0;
  Bytes sigma_;
  Bytes last_;
  uint64_t ops_since_sync_ = 0;

  // Sync machinery. Under message delays > 1 round, two users can announce
  // sync-ups concurrently before seeing each other's announcement; users
  // therefore participate in every announced sync-up independently, keyed by
  // sync id. New transactions stay paused while any sync is active.
  std::map<uint64_t, SyncState> syncs_;

  // Fault-localization journal: the user's last journal_len transitions.
  std::vector<TransitionRecord> journal_;

  // Rollback checkpoint: gctr at the last successful sync-up. On detection,
  // everything after this point may need rolling back; nothing before does.
  uint64_t checkpoint_gctr_ = 0;

 public:
  uint64_t checkpoint_gctr() const { return checkpoint_gctr_; }

 private:

  // Protocol III.
  uint64_t current_epoch_ = 0;
  std::vector<EpochStateBlob> upload_queue_;
  uint64_t next_audit_epoch_ = 0;
  std::optional<uint64_t> audit_inflight_epoch_;

  // Token baseline.
  std::optional<uint64_t> last_slot_sent_;

  // Forced-sync experiment control.
  size_t forced_sync_idx_ = 0;

  // p-partial synchrony: this user's local-clock period and the messages
  // delivered between its ticks.
  sim::Round period_ = 1;
  std::vector<sim::Message> pending_inbox_;

  // Stats.
  uint64_t ops_completed_ = 0;
  uint64_t latency_sum_ = 0;
  uint64_t latency_max_ = 0;
  util::Histogram latency_hist_;
  bool dead_ = false;  // Stop after reporting detection.
};

}  // namespace core
}  // namespace tcvs
