#include "core/server.h"

#include <algorithm>

#include "util/logging.h"
#include "util/metrics.h"

namespace tcvs {
namespace core {

namespace {
bool ScheduleHas(const AttackConfig& attack, AttackKind kind) {
  for (const AttackStep& step : attack.schedule) {
    if (step.kind == kind) return true;
  }
  return false;
}
}  // namespace

ProtocolServer::ProtocolServer(ScenarioConfig config, Bytes initial_sig,
                               uint32_t initial_signer)
    : config_(std::move(config)), main_(config_.tree_params) {
  main_.sig = std::move(initial_sig);
  main_.creator = initial_signer;
  replay_cursor_ = config_.attack.replay_skip;
  sched_activated_.assign(config_.attack.schedule.size(), false);
}

void ProtocolServer::MarkAttackEngaged(sim::Round round) {
  if (attack_engaged_round_ == 0) attack_engaged_round_ = round;
}

void ProtocolServer::StepSchedule(sim::RoundContext* ctx) {
  const auto& schedule = config_.attack.schedule;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const AttackStep& step = schedule[i];
    if (sched_activated_[i] || ctx->round() < step.at) continue;
    switch (step.kind) {
      case AttackKind::kFork: {
        if (!fork_.has_value()) {
          fork_.emplace(config_.tree_params);
          fork_->db = main_.db.Clone();
          fork_->ctr = main_.ctr;
          fork_->creator = main_.creator;
          fork_->sig = main_.sig;
        }
        sched_forked_.insert(step.victims.begin(), step.victims.end());
        sched_activated_[i] = true;
        break;
      }
      case AttackKind::kRollback: {
        // Nothing to resurrect yet: stay armed until history exists.
        if (rollback_log_.empty()) break;
        size_t depth = static_cast<size_t>(std::max<uint64_t>(step.arg, 1));
        depth = std::min(depth, rollback_log_.size());
        ReplayEntry& entry = rollback_log_[rollback_log_.size() - depth];
        main_.db = entry.pre_db.Clone();
        main_.ctr = entry.ctr;
        main_.creator = entry.creator;
        main_.sig = entry.sig;
        rollback_log_.resize(rollback_log_.size() - depth);
        MarkAttackEngaged(ctx->round());
        sched_activated_[i] = true;
        break;
      }
      case AttackKind::kReplaySegment: {
        // Arm the replay cursor; victims are served from the recorded
        // transitions as their queries arrive (HandleQuery).
        sched_replay_serving_ = true;
        replay_cursor_ =
            std::min(static_cast<size_t>(step.arg), replay_history_.size());
        sched_activated_[i] = true;
        break;
      }
      default:
        // Windowed kinds (equivocate / drop / delay) match per-operation via
        // ActiveStep; no one-shot state transition to make.
        sched_activated_[i] = true;
        break;
    }
  }

  // Release delayed responses whose hold expired.
  std::deque<DelayedSend> still_held;
  for (auto& d : delayed_) {
    if (d.due <= ctx->round()) {
      ctx->Send(d.to, kMsgQueryResponse, std::move(d.payload));
    } else {
      still_held.push_back(std::move(d));
    }
  }
  delayed_ = std::move(still_held);
}

const AttackStep* ProtocolServer::ActiveStep(AttackKind kind, sim::Round round,
                                             sim::AgentId user) const {
  for (const AttackStep& step : config_.attack.schedule) {
    if (step.kind != kind) continue;
    if (round < step.at || round > step.at + step.duration) continue;
    if (!step.victims.empty() && step.victims.count(user) == 0) continue;
    return &step;
  }
  return nullptr;
}

void ProtocolServer::OnRound(sim::RoundContext* ctx) {
  if (ScheduleMode()) StepSchedule(ctx);

  // Fork attack: split the state at the trigger round, not at first use, so
  // transactions landing on the main branch after the trigger are invisible
  // to the partitioned users (the Figure-1 attack needs t1 ∉ fork).
  if (config_.attack.kind == AttackKind::kFork && !fork_.has_value() &&
      ctx->round() >= config_.attack.trigger_round) {
    fork_.emplace(config_.tree_params);
    fork_->db = main_.db.Clone();
    fork_->ctr = main_.ctr;
    fork_->creator = main_.creator;
    fork_->sig = main_.sig;
  }

  // New messages join the tail of the pending queue; the queue preserves the
  // serial arrival order the trusted server would execute in.
  for (const auto& msg : ctx->inbox()) {
    switch (msg.type) {
      case kMsgQueryRequest:
        pending_.push_back(msg);
        break;
      case kMsgRootSigUpload:
        HandleSigUpload(msg);
        break;
      case kMsgEpochStatesRequest:
        HandleEpochRequest(ctx, msg);
        break;
      default:
        break;  // Broadcast traffic is user-to-user; ignore anything else.
    }
  }

  // Availability violation by silence: accept queries but never answer.
  if (config_.attack.kind == AttackKind::kStall &&
      ctx->round() >= config_.attack.trigger_round) {
    if (!pending_.empty()) MarkAttackEngaged(ctx->round());
    return;
  }

  // Execute queued queries. Non-blocking protocols drain the whole queue;
  // Protocol I (and the token baseline) stop after one query and wait for
  // the user's signature upload — the paper's throughput-limiting step.
  while (!pending_.empty()) {
    if (UsesBlockingSig() && awaiting_sig_) break;
    sim::Message msg = std::move(pending_.front());
    pending_.pop_front();
    HandleQuery(ctx, msg);
    if (UsesBlockingSig()) awaiting_sig_ = true;
  }
}

ProtocolServer::Branch* ProtocolServer::RouteBranch(sim::RoundContext* ctx,
                                                    sim::AgentId user) {
  const AttackConfig& attack = config_.attack;
  if (ScheduleMode()) {
    if (fork_.has_value() && sched_forked_.count(user) > 0) {
      MarkAttackEngaged(ctx->round());
      return &fork_.value();
    }
    return &main_;
  }
  if (attack.kind == AttackKind::kFork && fork_.has_value() &&
      attack.partition_a.count(user) > 0) {
    MarkAttackEngaged(ctx->round());
    return &fork_.value();
  }
  return &main_;
}

void ProtocolServer::HandleQuery(sim::RoundContext* ctx, const sim::Message& msg) {
  auto req_or = QueryRequest::Deserialize(msg.payload);
  if (!req_or.ok()) return;  // Malformed request: drop (failures out of scope).
  // Server-side structural endorsement: the untrusted server consumes client
  // frames as-is; no cryptographic property is claimed (see FrameChecked).
  QueryRequest req = AcceptClientFrame(std::move(req_or).ValueOrDie());

  // Protocol III: store the piggybacked signed epoch state (the server is
  // just a blob store here; verification happens at the auditor).
  if (req.epoch_upload.has_value()) {
    const EpochStateBlob& blob = *req.epoch_upload;
    epoch_states_[blob.epoch][blob.user] = blob;
  }

  const AttackConfig& attack = config_.attack;

  if (ScheduleMode()) {
    // Composed schedule: serve replay victims from the recorded transitions
    // (same mechanics as the Figure-3 attack), honest transitions of
    // non-victims feed the recording whenever a replay step exists.
    const AttackStep* replay_step = nullptr;
    for (const AttackStep& step : attack.schedule) {
      if (step.kind == AttackKind::kReplaySegment &&
          step.victims.count(msg.from) > 0) {
        replay_step = &step;
        break;
      }
    }
    if (sched_replay_serving_ && replay_step != nullptr &&
        replay_cursor_ < replay_history_.size()) {
      MarkAttackEngaged(ctx->round());
      ReplayEntry& entry = replay_history_[replay_cursor_++];
      Branch replay_branch(config_.tree_params);
      replay_branch.db = entry.pre_db.Clone();
      replay_branch.ctr = entry.ctr;
      replay_branch.creator = entry.creator;
      replay_branch.sig = entry.sig;
      Execute(ctx, msg.from, req, &replay_branch,
              /*record_replay_history=*/false);
      return;
    }
    Branch* branch = RouteBranch(ctx, msg.from);
    bool record_history =
        replay_step == nullptr &&
        ScheduleHas(attack, AttackKind::kReplaySegment) && branch == &main_;
    Execute(ctx, msg.from, req, branch, record_history);
    return;
  }

  // Figure-3 replay: serve mirror users recorded transitions.
  if (attack.kind == AttackKind::kReplaySegment &&
      ctx->round() >= attack.trigger_round &&
      attack.mirror_users.count(msg.from) > 0 &&
      replay_cursor_ < replay_history_.size()) {
    MarkAttackEngaged(ctx->round());
    ReplayEntry& entry = replay_history_[replay_cursor_++];
    Branch replay_branch(config_.tree_params);
    replay_branch.db = entry.pre_db.Clone();
    replay_branch.ctr = entry.ctr;
    replay_branch.creator = entry.creator;
    replay_branch.sig = entry.sig;
    Execute(ctx, msg.from, req, &replay_branch, /*record_replay_history=*/false);
    return;
  }

  Branch* branch = RouteBranch(ctx, msg.from);
  bool record_history = attack.kind == AttackKind::kReplaySegment &&
                        attack.mirror_users.count(msg.from) == 0;
  Execute(ctx, msg.from, req, branch, record_history);
}

void ProtocolServer::Execute(sim::RoundContext* ctx, sim::AgentId user,
                             const QueryRequest& req, Branch* branch,
                             bool record_replay_history) {
  // Join the querying user's causal trace: the proof/upsert spans below and
  // the response echo all carry the trace id the query arrived with.
  util::ScopedTraceContext trace_ctx(req.trace_id, 0);
  TCVS_SPAN("core.server.execute");
  const AttackConfig& attack = config_.attack;

  if (record_replay_history) {
    ReplayEntry entry{branch->db.Clone(), branch->ctr, branch->creator,
                      branch->sig};
    replay_history_.push_back(std::move(entry));
  }

  // Composed schedule with a rollback step: keep a bounded log of the main
  // branch's pre-transition states so the rollback can resurrect one.
  if (ScheduleMode() && branch == &main_ &&
      ScheduleHas(attack, AttackKind::kRollback)) {
    if (rollback_log_.size() == kMaxRollbackLog) {
      rollback_log_.erase(rollback_log_.begin());
    }
    rollback_log_.push_back(
        ReplayEntry{main_.db.Clone(), main_.ctr, main_.creator, main_.sig});
  }

  QueryResponse resp;
  resp.qid = req.qid;
  resp.kind = req.kind;
  resp.ctr = branch->ctr;
  resp.creator = branch->creator;
  resp.sig = branch->sig;
  resp.epoch = ctx->round() / config_.epoch_rounds;
  resp.trace_id = util::CurrentSpanContext().trace_id;

  const bool with_vo = config_.protocol != ProtocolKind::kPlain;

  // Decide whether a one-shot integrity/availability attack fires on this
  // operation.
  bool tamper_now = attack.kind == AttackKind::kTamper && !one_shot_done_ &&
                    ctx->round() >= attack.trigger_round &&
                    req.kind == sim::OpKind::kCommit;
  bool drop_now = attack.kind == AttackKind::kDrop && !one_shot_done_ &&
                  ctx->round() >= attack.trigger_round &&
                  req.kind == sim::OpKind::kCommit;

  // Composed schedule: equivocate (tamper) and selective-drop windows apply
  // to every victim commit inside the window, not just one shot.
  if (ScheduleMode() && req.kind == sim::OpKind::kCommit) {
    if (ActiveStep(AttackKind::kEquivocate, ctx->round(), user) != nullptr) {
      tamper_now = true;
    }
    if (ActiveStep(AttackKind::kDrop, ctx->round(), user) != nullptr) {
      drop_now = true;
    }
  }

  switch (req.kind) {
    case sim::OpKind::kCheckout: {
      if (with_vo) {
        mtree::PointVO vo = branch->db.ProvePoint(req.key);
        resp.vo = vo.Serialize();
      }
      auto value = branch->db.Get(req.key);
      resp.found = value.has_value();
      if (value.has_value()) resp.answer = *value;
      break;
    }
    case sim::OpKind::kCommit: {
      Bytes value = req.value;
      if (tamper_now) {
        // Single-user integrity violation: apply altered content.
        util::Append(&value, "\n// TAMPERED BY SERVER\n");
        one_shot_done_ = true;
        MarkAttackEngaged(ctx->round());
      }
      if (drop_now) {
        // Single-user availability violation: acknowledge but do not apply.
        if (with_vo) resp.vo = branch->db.ProvePoint(req.key).Serialize();
        one_shot_done_ = true;
        MarkAttackEngaged(ctx->round());
      } else {
        mtree::PointVO vo = branch->db.Upsert(req.key, value);
        if (with_vo) resp.vo = vo.Serialize();
      }
      break;
    }
    case sim::OpKind::kDelete: {
      bool found = false;
      mtree::PointVO vo = branch->db.Delete(req.key, &found);
      if (with_vo) resp.vo = vo.Serialize();
      resp.found = found;
      break;
    }
  }

  // Every transaction advances the counter; the new state's creator is the
  // requesting user. Under Protocol I the signature for the new state is
  // installed only when the user's upload arrives.
  branch->ctr += 1;
  branch->creator = user;
  if (UsesBlockingSig()) branch->sig.clear();

  ++ops_processed_;
  if (attack_engaged_round_ != 0) ++ops_after_attack_;

  // Composed schedule: hold the response back inside a delay window. Bounded
  // delay is within the model (not a deviation), so no engagement mark — it
  // exists to perturb interleavings and sync timing in campaigns.
  const AttackStep* delay =
      ScheduleMode() ? ActiveStep(AttackKind::kDelay, ctx->round(), user)
                     : nullptr;
  if (delay != nullptr && delay->arg > 0) {
    delayed_.push_back(DelayedSend{
        ctx->round() + static_cast<sim::Round>(delay->arg), user,
        resp.Serialize()});
    return;
  }

  ctx->Send(user, kMsgQueryResponse, resp.Serialize());
}

void ProtocolServer::HandleSigUpload(const sim::Message& msg) {
  auto up_or = RootSigUpload::Deserialize(msg.payload);
  if (!up_or.ok()) return;
  RootSigUpload up = AcceptClientFrame(std::move(up_or).ValueOrDie());
  awaiting_sig_ = false;
  // Install the signature on whichever branch it continues. Replay-fork
  // uploads (stale counters) are silently discarded — the untrusted server
  // has no use for them.
  if (up.ctr_after == main_.ctr && up.user == main_.creator) {
    main_.sig = up.sig;
  } else if (fork_.has_value() && up.ctr_after == fork_->ctr &&
             up.user == fork_->creator) {
    fork_->sig = up.sig;
  }
}

void ProtocolServer::HandleEpochRequest(sim::RoundContext* ctx,
                                        const sim::Message& msg) {
  auto req_or = EpochStatesRequest::Deserialize(msg.payload);
  if (!req_or.ok()) return;
  const EpochStatesRequest req = AcceptClientFrame(std::move(req_or).ValueOrDie());
  const uint64_t epoch = req.epoch;
  const AttackConfig& attack = config_.attack;

  EpochStatesReply reply;
  reply.epoch = epoch;
  for (const auto& [user, blob] : epoch_states_[epoch]) {
    if (attack.kind == AttackKind::kOmitEpochState && user == attack.victim &&
        ctx->round() >= attack.trigger_round) {
      MarkAttackEngaged(ctx->round());
      continue;  // Withhold the victim's state.
    }
    if (attack.kind == AttackKind::kStaleEpochState && user == attack.victim &&
        ctx->round() >= attack.trigger_round && epoch > 0 &&
        epoch_states_[epoch - 1].count(user) > 0) {
      MarkAttackEngaged(ctx->round());
      reply.states.push_back(epoch_states_[epoch - 1][user]);
      continue;  // Substitute last epoch's (validly signed, stale) blob.
    }
    reply.states.push_back(blob);
  }
  if (epoch > 0) {
    for (const auto& [user, blob] : epoch_states_[epoch - 1]) {
      reply.prev_states.push_back(blob);
    }
  }
  ctx->Send(msg.from, kMsgEpochStatesReply, reply.Serialize());
}

}  // namespace core
}  // namespace tcvs
