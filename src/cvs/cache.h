#pragma once

#include <map>
#include <string>
#include <vector>

#include "cvs/repository.h"
#include "mtree/vo.h"
#include "util/result.h"
#include "util/taint_annotations.h"

namespace tcvs {
namespace cvs {

/// \brief Client-side store of the last *verified* record seen per path —
/// the substrate of `tcvs`'s degraded read-only mode.
///
/// Every record enters the cache only after VerifyingClient accepted the
/// server's proof for it, so serving from the cache is serving
/// once-verified data: stale at worst, never unverified. When the server
/// stays unreachable past the retry budget, reads (cat / checkout / ls)
/// fall back to this cache instead of aborting; mutations still fail with
/// kUnavailable — degraded mode is strictly read-only.
class LocalCache {
 public:
  /// Records the verified state of `path` (checkout hit or applied commit).
  /// Trusted sink: `record` must come from an endorsed server reply.
  TCVS_TRUSTED_SINK void Put(const std::string& path, FileRecord record);

  /// Records a verified removal (or authenticated absence) of `path`.
  TCVS_TRUSTED_SINK void Erase(const std::string& path);

  /// The last verified record, or nullptr if never seen.
  const FileRecord* Find(const std::string& path) const;

  /// (path, revision) of every cached file under `prefix`, sorted. Unlike
  /// an online ListDir this has no completeness proof — it reflects only
  /// what this client verified before the outage.
  std::vector<std::pair<std::string, uint64_t>> List(
      const std::string& prefix) const;

  size_t size() const { return files_.size(); }

  /// \name VO subtree-cache sidecar.
  /// The CLI persists the client's mtree::VoCache alongside the file cache
  /// so repeat proofs stay warm across invocations. The entries are
  /// content-addressed (key = hash of the verified bytes), so a corrupted
  /// sidecar can at worst cause misses or digests that fail the trusted-root
  /// comparison — never acceptance of unverified content.
  /// @{
  void StoreVoEntries(const mtree::VoCache& cache);
  void LoadVoEntriesInto(mtree::VoCache* cache) const;
  size_t vo_entry_count() const { return vo_entries_.size(); }
  /// @}

  Bytes Serialize() const;
  // taint-exempt: local-origin — parses the client's own cache file, whose
  // contents were verified before they were written.
  static Result<LocalCache> Deserialize(const Bytes& data);

 private:
  std::map<std::string, FileRecord> files_;
  std::vector<std::pair<crypto::Digest, crypto::Digest>> vo_entries_;
};

}  // namespace cvs
}  // namespace tcvs
