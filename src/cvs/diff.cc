#include "cvs/diff.h"

#include <algorithm>

#include "util/serde.h"

namespace tcvs {
namespace cvs {

size_t Patch::lines_added() const {
  size_t n = 0;
  for (const auto& h : hunks) n += h.added.size();
  return n;
}

size_t Patch::lines_removed() const {
  size_t n = 0;
  for (const auto& h : hunks) n += h.removed.size();
  return n;
}

Bytes Patch::Serialize() const {
  util::Writer w;
  w.PutU32(static_cast<uint32_t>(hunks.size()));
  for (const auto& h : hunks) {
    w.PutU64(h.old_pos);
    w.PutU32(static_cast<uint32_t>(h.removed.size()));
    for (const auto& line : h.removed) w.PutString(line);
    w.PutU32(static_cast<uint32_t>(h.added.size()));
    for (const auto& line : h.added) w.PutString(line);
  }
  return w.Take();
}

Result<Patch> Patch::Deserialize(const Bytes& data) {
  util::Reader r(data);
  Patch p;
  TCVS_ASSIGN_OR_RETURN(uint32_t nhunks, r.GetU32());
  for (uint32_t i = 0; i < nhunks; ++i) {
    Hunk h;
    TCVS_ASSIGN_OR_RETURN(h.old_pos, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(uint32_t nrem, r.GetU32());
    for (uint32_t j = 0; j < nrem; ++j) {
      TCVS_ASSIGN_OR_RETURN(std::string line, r.GetString());
      h.removed.push_back(std::move(line));
    }
    TCVS_ASSIGN_OR_RETURN(uint32_t nadd, r.GetU32());
    for (uint32_t j = 0; j < nadd; ++j) {
      TCVS_ASSIGN_OR_RETURN(std::string line, r.GetString());
      h.added.push_back(std::move(line));
    }
    p.hunks.push_back(std::move(h));
  }
  if (!r.AtEnd()) return Status::InvalidArgument("trailing bytes after patch");
  return p;
}

std::string Patch::ToString() const {
  std::string out;
  for (const auto& h : hunks) {
    out += "@@ -" + std::to_string(h.old_pos + 1) + "," +
           std::to_string(h.removed.size()) + " +" +
           std::to_string(h.added.size()) + " @@\n";
    for (const auto& line : h.removed) out += "-" + line + "\n";
    for (const auto& line : h.added) out += "+" + line + "\n";
  }
  return out;
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

namespace {

// Converts a Myers edit script (sequence of 'M'atch / 'D'elete / 'I'nsert
// moves over the old/new files) into coalesced hunks.
Patch OpsToPatch(const std::vector<char>& ops,
                 const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
  Patch patch;
  size_t i = 0, j = 0;
  Hunk current;
  bool open = false;
  auto flush = [&]() {
    if (open) {
      patch.hunks.push_back(std::move(current));
      current = Hunk{};
      open = false;
    }
  };
  for (char op : ops) {
    switch (op) {
      case 'M':
        flush();
        ++i;
        ++j;
        break;
      case 'D':
        if (!open) {
          current.old_pos = i;
          open = true;
        }
        current.removed.push_back(a[i]);
        ++i;
        break;
      case 'I':
        if (!open) {
          current.old_pos = i;
          open = true;
        }
        current.added.push_back(b[j]);
        ++j;
        break;
    }
  }
  flush();
  return patch;
}

}  // namespace

Patch ComputeDiff(const std::vector<std::string>& a,
                  const std::vector<std::string>& b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  const int max_d = n + m;
  if (max_d == 0) return Patch{};

  const int offset = max_d;
  std::vector<int> v(2 * max_d + 1, 0);
  std::vector<std::vector<int>> trace;

  int final_d = -1;
  for (int d = 0; d <= max_d; ++d) {
    trace.push_back(v);
    for (int k = -d; k <= d; k += 2) {
      int x;
      if (k == -d || (k != d && v[offset + k - 1] < v[offset + k + 1])) {
        x = v[offset + k + 1];  // Move down (insert).
      } else {
        x = v[offset + k - 1] + 1;  // Move right (delete).
      }
      int y = x - k;
      while (x < n && y < m && a[x] == b[y]) {
        ++x;
        ++y;
      }
      v[offset + k] = x;
      if (x >= n && y >= m) {
        final_d = d;
        break;
      }
    }
    if (final_d >= 0) break;
  }

  // Backtrack from (n, m) through the stored V arrays.
  std::vector<char> ops;
  int x = n, y = m;
  for (int d = final_d; d > 0; --d) {
    const auto& pv = trace[d];
    int k = x - y;
    int prev_k;
    if (k == -d || (k != d && pv[offset + k - 1] < pv[offset + k + 1])) {
      prev_k = k + 1;
    } else {
      prev_k = k - 1;
    }
    int prev_x = pv[offset + prev_k];
    int prev_y = prev_x - prev_k;
    while (x > prev_x && y > prev_y) {
      ops.push_back('M');
      --x;
      --y;
    }
    if (x == prev_x) {
      ops.push_back('I');
      --y;
    } else {
      ops.push_back('D');
      --x;
    }
  }
  while (x > 0 && y > 0) {
    ops.push_back('M');
    --x;
    --y;
  }
  std::reverse(ops.begin(), ops.end());
  return OpsToPatch(ops, a, b);
}

Patch ComputeDiffText(std::string_view old_text, std::string_view new_text) {
  return ComputeDiff(SplitLines(old_text), SplitLines(new_text));
}

Result<std::vector<std::string>> ApplyPatch(
    const std::vector<std::string>& old_lines, const Patch& patch) {
  std::vector<std::string> out;
  size_t cursor = 0;
  for (const auto& h : patch.hunks) {
    if (h.old_pos < cursor || h.old_pos > old_lines.size()) {
      return Status::Corruption("hunk position out of order or out of range");
    }
    for (size_t i = cursor; i < h.old_pos; ++i) out.push_back(old_lines[i]);
    cursor = h.old_pos;
    for (const auto& line : h.removed) {
      if (cursor >= old_lines.size() || old_lines[cursor] != line) {
        return Status::Corruption("patch context mismatch at line " +
                                  std::to_string(cursor + 1));
      }
      ++cursor;
    }
    for (const auto& line : h.added) out.push_back(line);
  }
  for (size_t i = cursor; i < old_lines.size(); ++i) out.push_back(old_lines[i]);
  return out;
}

Result<std::string> ApplyPatchText(std::string_view old_text, const Patch& patch) {
  TCVS_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        ApplyPatch(SplitLines(old_text), patch));
  return JoinLines(lines);
}

// ---------------------------------------------------------------------------
// Three-way merge
// ---------------------------------------------------------------------------

namespace {

struct Region {
  size_t lo, hi;  // Base line range [lo, hi).
};

// Half-open overlap; equal-position zero-width edits conflict too.
bool Overlaps(const Region& a, const Region& b) {
  if (a.lo == b.lo) return true;
  return a.lo < b.hi && b.lo < a.hi;
}

Region HunkRegion(const Hunk& h) {
  return Region{h.old_pos, h.old_pos + h.removed.size()};
}

// Applies the hunks in [first, last) — all positioned inside [lo, hi) of the
// base — to that base slice.
std::vector<std::string> ApplyToSlice(const std::vector<std::string>& base,
                                      size_t lo, size_t hi,
                                      const std::vector<Hunk>& hunks,
                                      size_t first, size_t last) {
  std::vector<std::string> out;
  size_t cursor = lo;
  for (size_t i = first; i < last; ++i) {
    const Hunk& h = hunks[i];
    for (size_t p = cursor; p < h.old_pos; ++p) out.push_back(base[p]);
    cursor = h.old_pos + h.removed.size();
    for (const auto& line : h.added) out.push_back(line);
  }
  for (size_t p = cursor; p < hi; ++p) out.push_back(base[p]);
  return out;
}

}  // namespace

MergeResult ThreeWayMerge(const std::vector<std::string>& base,
                          const std::vector<std::string>& ours,
                          const std::vector<std::string>& theirs) {
  const Patch our_patch = ComputeDiff(base, ours);
  const Patch their_patch = ComputeDiff(base, theirs);
  const auto& oh = our_patch.hunks;
  const auto& th = their_patch.hunks;

  MergeResult result;
  size_t cursor = 0;  // Base cursor.
  size_t i = 0, j = 0;

  while (i < oh.size() || j < th.size()) {
    // Pick the side whose next hunk starts first.
    bool take_ours;
    if (i >= oh.size()) {
      take_ours = false;
    } else if (j >= th.size()) {
      take_ours = true;
    } else {
      take_ours = HunkRegion(oh[i]).lo <= HunkRegion(th[j]).lo;
    }

    const Hunk& next = take_ours ? oh[i] : th[j];
    Region region = HunkRegion(next);

    // Does the other side's next hunk overlap? Grow a conflict region that
    // swallows every overlapping hunk from both sides.
    size_t oi = i, oj = j;
    bool grew = true;
    size_t end_i = take_ours ? i + 1 : i;
    size_t end_j = take_ours ? j : j + 1;
    while (grew) {
      grew = false;
      while (end_i < oh.size() && Overlaps(region, HunkRegion(oh[end_i]))) {
        region.lo = std::min(region.lo, HunkRegion(oh[end_i]).lo);
        region.hi = std::max(region.hi, HunkRegion(oh[end_i]).hi);
        ++end_i;
        grew = true;
      }
      while (end_j < th.size() && Overlaps(region, HunkRegion(th[end_j]))) {
        region.lo = std::min(region.lo, HunkRegion(th[end_j]).lo);
        region.hi = std::max(region.hi, HunkRegion(th[end_j]).hi);
        ++end_j;
        grew = true;
      }
    }
    const bool both_sides = (end_i > oi) && (end_j > oj);

    // Copy untouched base lines up to the region.
    for (size_t p = cursor; p < region.lo; ++p) result.lines.push_back(base[p]);

    if (!both_sides) {
      // Clean: only one side edited this region.
      if (end_i > oi) {
        auto piece = ApplyToSlice(base, region.lo, region.hi, oh, oi, end_i);
        result.lines.insert(result.lines.end(), piece.begin(), piece.end());
      } else {
        auto piece = ApplyToSlice(base, region.lo, region.hi, th, oj, end_j);
        result.lines.insert(result.lines.end(), piece.begin(), piece.end());
      }
    } else {
      auto our_piece = ApplyToSlice(base, region.lo, region.hi, oh, oi, end_i);
      auto their_piece = ApplyToSlice(base, region.lo, region.hi, th, oj, end_j);
      if (our_piece == their_piece) {
        // Both sides made the identical change.
        result.lines.insert(result.lines.end(), our_piece.begin(),
                            our_piece.end());
      } else {
        result.had_conflicts = true;
        result.lines.push_back("<<<<<<< ours");
        result.lines.insert(result.lines.end(), our_piece.begin(),
                            our_piece.end());
        result.lines.push_back("=======");
        result.lines.insert(result.lines.end(), their_piece.begin(),
                            their_piece.end());
        result.lines.push_back(">>>>>>> theirs");
      }
    }

    cursor = region.hi;
    i = end_i;
    j = end_j;
  }
  for (size_t p = cursor; p < base.size(); ++p) result.lines.push_back(base[p]);
  return result;
}

}  // namespace cvs
}  // namespace tcvs
