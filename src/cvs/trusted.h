#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/fingerprint.h"
#include "crypto/translog.h"
#include "cvs/repository.h"
#include "mtree/btree.h"
#include "mtree/vo.h"
#include "util/result.h"
#include "util/untrusted.h"

namespace tcvs {
namespace cvs {

/// Taint-verifier token: a full server reply survived VerifyingClient's
/// chained walk — every per-file VO verified against the running root, every
/// answer authenticated, every update locally replayed, and the applied flag
/// cross-checked. The strongest endorsement in the cvs layer.
struct ChainVerified {
  TCVS_TAINT_VERIFIER(ChainVerified);
};

/// \brief One file operation inside a (possibly multi-file) transaction —
/// the paper's `commit <file names>` takes a list.
struct FileOp {
  enum class Kind : uint8_t { kCheckout = 0, kCommit = 1, kRemove = 2 };
  Kind kind = Kind::kCheckout;
  std::string path;
  std::string content;        // kCommit only.
  uint64_t base_revision = 0;  // kCommit only; 0 = create.
};

/// \brief Envelope every server reply travels in: per-file verification
/// objects chained over intermediate states, plus the Protocol II counter
/// and creator fields.
struct ServerReply {
  /// Conditional transaction: whether the server applied it (all-or-nothing
  /// for multi-file commits).
  bool applied = false;
  struct PerFile {
    bool found = false;
    /// Serialized mtree::PointVO proving the state *before this sub-op*
    /// (i.e. after the previous sub-ops of the same transaction).
    Bytes vo;
  };
  std::vector<PerFile> files;
  /// Operation counter before this transaction.
  uint64_t ctr = 0;
  /// User whose transaction created the pre-state.
  uint32_t creator = 0;

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<ServerReply>> Deserialize(const Bytes& data);
};

/// \brief A signed-tree-head-style checkpoint of the server's transparency
/// log over its root-digest history, with a consistency proof from the
/// client's previous checkpoint (RFC 6962 semantics).
///
/// The log gives clients an *append-only* guarantee on history: a server
/// that rewrites any already-logged (ctr, root) pair can never produce a
/// valid consistency proof again. Together with the Protocol II registers
/// (which catch forks across users at sync-up) this closes the rollback
/// case a single offline client could not otherwise prove.
struct LogCheckpointReply {
  uint64_t size = 0;
  crypto::Digest root;
  std::vector<crypto::Digest> consistency;

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<LogCheckpointReply>> Deserialize(
      const Bytes& data);
};

/// \brief Canonical transparency-log entry for transaction `ctr` producing
/// database root `root`.
Bytes LogEntry(uint64_t ctr, const crypto::Digest& root);

/// \brief Reply to a directory-listing transaction: the serialized
/// mtree::RangeVO over the prefix range, plus the protocol envelope.
struct ListReply {
  Bytes range_vo;
  uint64_t ctr = 0;
  uint32_t creator = 0;

  Bytes Serialize() const;
  TCVS_UNTRUSTED_SOURCE
  static Result<util::Tainted<ListReply>> Deserialize(const Bytes& data);
};

/// \brief Transport-independent server interface: implemented in-process by
/// UntrustedServer and over TCP by rpc::RemoteServer. Every method is one
/// atomic transaction (one counter increment).
///
/// Every reply is quarantined: whether it was built in-process or parsed off
/// a socket, it is the *untrusted vendor's* output, and VerifyingClient's
/// chain walk is the only thing that may unwrap it.
class ServerApi {
 public:
  virtual ~ServerApi() = default;

  /// Executes `ops` atomically as one transaction by `user`. For
  /// transactions containing commits, the server applies all of them only
  /// if every commit's base revision matches (CVS semantics per file);
  /// otherwise it applies none and `applied` is false.
  virtual Result<util::Tainted<ServerReply>> Transact(
      uint32_t user, const std::vector<FileOp>& ops) = 0;

  /// Read-only directory listing transaction: a range proof over
  /// [prefix, prefix ∥ 0xFF…] plus the Protocol II envelope. The proof is
  /// COMPLETE — a vendor hiding files is caught by the range verification.
  virtual Result<util::Tainted<ListReply>> List(uint32_t user,
                                                const std::string& prefix) = 0;

  /// Current transparency-log checkpoint with a consistency proof from the
  /// caller's previous checkpoint size (not a transaction; the counter does
  /// not advance).
  virtual Result<util::Tainted<LogCheckpointReply>> LogCheckpoint(
      uint64_t old_size) = 0;

  /// Tree geometry, needed by clients for VO replay.
  virtual mtree::TreeParams tree_params() const = 0;
};

/// \brief What the hosting vendor runs: a CVS repository over the Merkle
/// B⁺-tree whose every reply carries chained verification objects, an
/// operation counter, and the creator of the current state — the server
/// side of Protocol II as a direct API.
///
/// The server is untrusted: nothing it returns is believed until it passes
/// VerifyingClient's checks; the cross-client sync-up catches what
/// per-reply verification cannot (forks, replays).
class UntrustedServer : public ServerApi {
 public:
  explicit UntrustedServer(mtree::TreeParams params = mtree::TreeParams{});

  /// Restore constructor (server restart from a snapshot): adopt an existing
  /// tree, the protocol counters, and the transparency-log leaves.
  UntrustedServer(mtree::MerkleBTree tree, uint64_t ctr, uint32_t creator,
                  std::vector<crypto::Digest> log_leaves = {});

  Result<util::Tainted<ServerReply>> Transact(
      uint32_t user, const std::vector<FileOp>& ops) override;
  Result<util::Tainted<ListReply>> List(uint32_t user,
                                        const std::string& prefix) override;
  Result<util::Tainted<LogCheckpointReply>> LogCheckpoint(
      uint64_t old_size) override;
  mtree::TreeParams tree_params() const override { return params_; }

  uint64_t ctr() const { return ctr_; }
  uint32_t creator() const { return creator_; }
  const mtree::MerkleBTree& tree() const { return tree_; }

  /// Transparency-log leaf hashes (for persistence).
  const std::vector<crypto::Digest>& log_leaf_hashes() const {
    return log_.leaf_hashes();
  }

  /// Test/attack hook: mutate the underlying tree out-of-band (a tampering
  /// vendor). Honest deployments never call this.
  mtree::MerkleBTree* mutable_tree_for_testing() { return &tree_; }

  /// Test/attack hook: rewrite a transparency-log leaf (a history-rewriting
  /// vendor).
  void rewrite_log_leaf_for_testing(uint64_t index, const Bytes& entry) {
    auto leaves = log_.leaf_hashes();
    leaves[index] = crypto::TransparencyLog::LeafHash(entry);
    log_ = crypto::TransparencyLog::FromLeafHashes(std::move(leaves));
  }

 private:
  void AppendLogEntry();

  mtree::TreeParams params_;
  mtree::MerkleBTree tree_;
  uint64_t ctr_ = 0;
  uint32_t creator_ = core::kInitialCreator;
  crypto::TransparencyLog log_;
};

/// \brief Portable snapshot of a client's O(1) verification state, so a CLI
/// can persist it between invocations.
struct ClientState {
  uint32_t user_id = 0;
  Bytes sigma;
  Bytes last;
  uint64_t gctr = 0;
  uint64_t lctr = 0;
  /// Transparency-log checkpoint (0/empty before the first audit).
  uint64_t log_size = 0;
  Bytes log_root;

  Bytes Serialize() const;
  // taint-exempt: local-origin — parses the client's own persisted state
  // file, which never crosses the server trust boundary.
  static Result<ClientState> Deserialize(const Bytes& data);
};

/// \brief A user's verifying CVS client over any ServerApi transport: full
/// Protocol II verification per reply (VO chain consistency, answer
/// authentication, local replay of updates, counter monotonicity, σ/last
/// register folding). Client state is O(1) (§2.2.5).
class VerifyingClient {
 public:
  VerifyingClient(uint32_t user_id, ServerApi* server);

  /// Restores a client from persisted state (CLI usage).
  VerifyingClient(ClientState state, ServerApi* server);

  uint32_t user_id() const { return user_id_; }

  /// Verified checkout. \return NotFound for authenticated absence.
  Result<FileRecord> Checkout(const std::string& path);

  /// Verified conditional commit of a single file.
  /// \return the new revision; FailedPrecondition/AlreadyExists on an
  /// authenticated conflict.
  Result<uint64_t> Commit(const std::string& path, std::string content,
                          uint64_t base_revision);

  /// Verified atomic multi-file commit (the paper's `commit <file names>`).
  /// All files commit or none does; per-file new revisions are returned.
  /// \return FailedPrecondition when any base revision is stale.
  Result<std::vector<uint64_t>> CommitMany(
      const std::vector<FileOp>& commits);

  /// Verified remove. \return NotFound if (provably) absent.
  Status Remove(const std::string& path);

  /// Verified multi-file checkout in one transaction; per-file records
  /// (nullopt = authenticated absence).
  Result<std::vector<std::optional<FileRecord>>> CheckoutMany(
      const std::vector<std::string>& paths);

  /// Verified, provably COMPLETE directory listing: every live file whose
  /// path starts with `prefix`, with its revision. A vendor hiding entries
  /// fails the range proof.
  Result<std::vector<std::pair<std::string, uint64_t>>> ListDir(
      const std::string& prefix);

  /// \name Protocol II registers.
  /// @{
  const Bytes& sigma() const { return sigma_; }
  const Bytes& last() const { return last_; }
  uint64_t gctr() const { return gctr_; }
  uint64_t lctr() const { return lctr_; }
  /// @}

  /// Snapshot for persistence.
  ClientState state() const;

  /// The §4.3 sync-up over live clients.
  static Status SyncUp(const std::vector<VerifyingClient*>& clients);

  /// The same check over persisted states (CLI: users mail each other their
  /// states and anyone runs the check).
  static Status SyncCheck(const std::vector<ClientState>& states);

  /// Fetches the server's transparency-log checkpoint, verifies it extends
  /// the locally remembered checkpoint (append-only history), and advances
  /// the local checkpoint. \return DeviationDetected when the server has
  /// rewritten or rolled back logged history.
  Status AuditLog();

  uint64_t log_checkpoint_size() const { return log_size_; }

  /// The client-side VO subtree cache (hot-path shortcut; see mtree::VoCache
  /// for the soundness argument). Exposed for persistence and tests.
  mtree::VoCache* vo_cache() { return &vo_cache_; }
  const mtree::VoCache& vo_cache() const { return vo_cache_; }

 private:
  /// Runs the full chain walk over a quarantined reply; on success the
  /// reply is endorsed (ChainVerified) and the registers folded.
  Result<ServerReply> Execute(const std::vector<FileOp>& ops,
                              std::vector<std::optional<FileRecord>>* pre_records);

  /// Folds one verified transaction into the Protocol II registers. The
  /// arguments must derive from an endorsed reply — this is the register
  /// trusted sink.
  TCVS_TRUSTED_SINK void FoldTransaction(const crypto::Digest& pre_root,
                                         const crypto::Digest& post_root,
                                         uint64_t ctr, uint32_t creator);

  /// Advances the transparency-log checkpoint after a verified consistency
  /// proof — the audit trusted sink.
  TCVS_TRUSTED_SINK void AdvanceLogCheckpoint(uint64_t size,
                                              const crypto::Digest& root);

  uint32_t user_id_;
  ServerApi* server_;
  Bytes sigma_;
  Bytes last_;
  uint64_t gctr_ = 0;
  uint64_t lctr_ = 0;
  uint64_t log_size_ = 0;
  crypto::Digest log_root_;
  mtree::TreeParams params_;
  mtree::VoCache vo_cache_;
};

}  // namespace cvs
}  // namespace tcvs
