#include "cvs/repository.h"

#include "util/serde.h"

namespace tcvs {
namespace cvs {

Bytes FileRecord::Serialize() const {
  util::Writer w;
  w.PutU64(revision);
  w.PutString(content);
  return w.Take();
}

Result<FileRecord> FileRecord::Deserialize(const Bytes& data) {
  util::Reader r(data);
  FileRecord rec;
  TCVS_ASSIGN_OR_RETURN(rec.revision, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(rec.content, r.GetString());
  if (!r.AtEnd()) return Status::InvalidArgument("trailing bytes after record");
  return rec;
}

namespace {
// Internal key-space for history records; '!' sorts below all printable path
// characters commonly used, keeping user files and history disjoint.
std::string HistKey(const std::string& path, uint64_t revision) {
  char rev[24];
  snprintf(rev, sizeof(rev), "%016llx", static_cast<unsigned long long>(revision));
  return "!hist/" + path + "/" + rev;
}
constexpr char kHistPrefix[] = "!hist/";
}  // namespace

Repository::Repository(mtree::TreeParams params, bool track_history)
    : tree_(params), track_history_(track_history) {}

Result<FileRecord> Repository::Checkout(const std::string& path) const {
  auto value = tree_.Get(util::ToBytes(path));
  if (!value.has_value()) return Status::NotFound("no such file: " + path);
  return FileRecord::Deserialize(*value);
}

Result<uint64_t> Repository::Commit(const std::string& path, std::string content,
                                    uint64_t base_revision) {
  auto existing = tree_.Get(util::ToBytes(path));
  uint64_t current = 0;
  if (existing.has_value()) {
    TCVS_ASSIGN_OR_RETURN(FileRecord rec, FileRecord::Deserialize(*existing));
    current = rec.revision;
  }
  if (base_revision == 0 && current != 0) {
    return Status::AlreadyExists("file already exists: " + path);
  }
  if (base_revision != current) {
    return Status::FailedPrecondition(
        "commit against revision " + std::to_string(base_revision) +
        " but current is " + std::to_string(current) + " (update first)");
  }
  FileRecord next;
  next.revision = current + 1;
  next.content = std::move(content);
  tree_.Upsert(util::ToBytes(path), next.Serialize());
  if (track_history_) {
    tree_.Upsert(util::ToBytes(HistKey(path, next.revision)), next.Serialize());
  }
  return next.revision;
}

Result<FileRecord> Repository::CheckoutRevision(const std::string& path,
                                                uint64_t revision) const {
  if (!track_history_) {
    return Status::FailedPrecondition("repository does not track history");
  }
  auto value = tree_.Get(util::ToBytes(HistKey(path, revision)));
  if (!value.has_value()) {
    return Status::NotFound("no revision " + std::to_string(revision) +
                            " of " + path);
  }
  return FileRecord::Deserialize(*value);
}

std::vector<uint64_t> Repository::ListRevisions(const std::string& path) const {
  std::vector<uint64_t> out;
  if (!track_history_) return out;
  Bytes lo = util::ToBytes(HistKey(path, 0));
  Bytes hi = util::ToBytes(HistKey(path, ~0ull));
  for (const auto& [key, value] : tree_.Range(lo, hi)) {
    auto rec = FileRecord::Deserialize(value);
    if (rec.ok()) out.push_back(rec->revision);
  }
  return out;
}

Result<Patch> Repository::DiffOfRevision(const std::string& path,
                                         uint64_t revision) const {
  if (revision == 0) return Status::InvalidArgument("revisions start at 1");
  TCVS_ASSIGN_OR_RETURN(FileRecord now, CheckoutRevision(path, revision));
  std::string before;
  if (revision > 1) {
    TCVS_ASSIGN_OR_RETURN(FileRecord prev, CheckoutRevision(path, revision - 1));
    before = prev.content;
  }
  return ComputeDiffText(before, now.content);
}

Status Repository::Remove(const std::string& path) {
  bool found = false;
  tree_.Delete(util::ToBytes(path), &found);
  if (!found) return Status::NotFound("no such file: " + path);
  return Status::OK();
}

std::vector<std::string> Repository::ListFiles() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : tree_.Items()) {
    std::string path = util::ToString(k);
    if (path.rfind(kHistPrefix, 0) == 0) continue;  // Internal history keys.
    out.push_back(std::move(path));
  }
  return out;
}

Result<Patch> Repository::DiffAgainst(const std::string& path,
                                      std::string_view new_content) const {
  TCVS_ASSIGN_OR_RETURN(FileRecord rec, Checkout(path));
  return ComputeDiffText(rec.content, new_content);
}

void WorkingCopy::OnCheckout(const std::string& path, FileRecord record) {
  Entry e;
  e.local = record.content;
  e.base = std::move(record);
  files_[path] = std::move(e);
}

Status WorkingCopy::Edit(const std::string& path, std::string new_content) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("not checked out: " + path);
  it->second.local = std::move(new_content);
  return Status::OK();
}

Result<std::string> WorkingCopy::Content(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("not checked out: " + path);
  return it->second.local;
}

Result<uint64_t> WorkingCopy::BaseRevision(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("not checked out: " + path);
  return it->second.base.revision;
}

Result<Patch> WorkingCopy::LocalDiff(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("not checked out: " + path);
  return ComputeDiffText(it->second.base.content, it->second.local);
}

Result<MergeResult> WorkingCopy::Update(const std::string& path,
                                        const FileRecord& upstream) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("not checked out: " + path);
  Entry& e = it->second;
  MergeResult merged = ThreeWayMerge(SplitLines(e.base.content),
                                     SplitLines(e.local),
                                     SplitLines(upstream.content));
  e.local = JoinLines(merged.lines);
  e.base = upstream;
  return merged;
}

}  // namespace cvs
}  // namespace tcvs
