#pragma once

#include <map>
#include <string>

#include "cvs/diff.h"
#include "mtree/btree.h"
#include "util/result.h"

namespace tcvs {
namespace cvs {

/// \brief A versioned file as stored in the database: the paper's data item.
/// The value bytes in the Merkle tree are the serialized record, so file
/// revisions are covered by the root digest.
struct FileRecord {
  uint64_t revision = 0;
  std::string content;

  Bytes Serialize() const;
  // taint-exempt: verified-origin — record bytes are parsed only out of the
  // server's own store or out of VO-authenticated leaf values, after the
  // Merkle proof over those values has already been checked.
  static Result<FileRecord> Deserialize(const Bytes& data);

  bool operator==(const FileRecord&) const = default;
};

/// \brief CVS repository semantics (checkout / commit / remove / log) layered
/// on the authenticated Merkle B⁺-tree. This is the *trusted-server* data
/// model; the untrusted-server protocols in src/core speak the underlying
/// key/value+VO interface and carry these records as opaque values.
///
/// Commit enforces optimistic concurrency exactly like CVS: a commit against
/// a stale base revision is rejected (the client must update/merge first).
class Repository {
 public:
  /// \param track_history when true, every committed revision is also stored
  /// under an internal history key, so old revisions remain retrievable —
  /// and, because history lives in the same Merkle tree, *authenticated*.
  explicit Repository(mtree::TreeParams params = mtree::TreeParams{},
                      bool track_history = false);

  /// Reads the current record of `path`.
  /// \return NotFound if the file does not exist.
  Result<FileRecord> Checkout(const std::string& path) const;

  /// Commits `content` on top of `base_revision`.
  /// \return the new revision; FailedPrecondition if `base_revision` is not
  /// the current revision (CVS "your copy is out of date" conflict);
  /// base_revision 0 means "create", rejected with AlreadyExists if present.
  Result<uint64_t> Commit(const std::string& path, std::string content,
                          uint64_t base_revision);

  /// Removes the file. \return NotFound if absent.
  Status Remove(const std::string& path);

  /// All current file paths, in lexicographic order.
  std::vector<std::string> ListFiles() const;

  /// Diff between the stored content and `new_content`.
  Result<Patch> DiffAgainst(const std::string& path,
                            std::string_view new_content) const;

  /// \name Revision history (requires track_history = true).
  /// @{
  /// Retrieves a specific historical revision.
  Result<FileRecord> CheckoutRevision(const std::string& path,
                                      uint64_t revision) const;
  /// All stored revision numbers of `path`, ascending.
  std::vector<uint64_t> ListRevisions(const std::string& path) const;
  /// The patch that turned `revision-1` into `revision`.
  Result<Patch> DiffOfRevision(const std::string& path, uint64_t revision) const;
  /// @}

  /// Number of live files (history records excluded).
  size_t file_count() const { return ListFiles().size(); }

  /// The authenticated store beneath (root digest, proofs).
  const mtree::MerkleBTree& tree() const { return tree_; }
  mtree::MerkleBTree* mutable_tree() { return &tree_; }

 private:
  mtree::MerkleBTree tree_;
  bool track_history_;
};

/// \brief A user's client-side working copy: the checked-out base revisions
/// plus local edits, supporting the CVS update/merge flow against records
/// fetched through any (trusted or verified-untrusted) channel.
class WorkingCopy {
 public:
  /// Records that `path` was checked out at `record`.
  void OnCheckout(const std::string& path, FileRecord record);

  /// Applies a local edit (uncommitted).
  /// \return NotFound if the file was never checked out.
  Status Edit(const std::string& path, std::string new_content);

  /// The locally edited (or checked-out) content.
  Result<std::string> Content(const std::string& path) const;

  /// Base revision `path` was checked out at.
  Result<uint64_t> BaseRevision(const std::string& path) const;

  /// Patch of local edits vs. the checked-out base.
  Result<Patch> LocalDiff(const std::string& path) const;

  /// Merges a newer upstream record into the locally edited file
  /// (CVS `update`): three-way merge of base → {local, upstream}.
  /// After the merge the base revision advances to the upstream revision.
  /// \return the merge result (conflict markers included when conflicting).
  Result<MergeResult> Update(const std::string& path, const FileRecord& upstream);

  bool Has(const std::string& path) const { return files_.count(path) > 0; }

 private:
  struct Entry {
    FileRecord base;
    std::string local;  // Current (possibly edited) content.
  };
  std::map<std::string, Entry> files_;
};

}  // namespace cvs
}  // namespace tcvs
