#include "cvs/trusted.h"

#include <algorithm>

#include "util/audit.h"
#include "util/metrics.h"
#include "util/serde.h"

namespace tcvs {
namespace cvs {

using core::kInitialCreator;
using core::StateFingerprint;
using core::XorBytes;

namespace {

// Emits a typed audit event and returns the matching DeviationDetected
// status. The trace id is filled from the active span by Emit, so events
// raised while verifying a reply carry the trace of that exchange.
Status Deviation(util::AuditEventKind kind, uint32_t user, uint64_t ctr,
                 uint64_t gctr, std::string detail) {
  util::AuditEvent event(kind);
  event.user = user;
  event.ctr = ctr;
  event.gctr = gctr;
  event.detail = detail;
  util::AuditLog::Instance().Emit(std::move(event));
  return Status::DeviationDetected(std::move(detail));
}

}  // namespace

// ---------------------------------------------------------------------------
// Wire structs
// ---------------------------------------------------------------------------

Bytes ServerReply::Serialize() const {
  util::Writer w;
  w.PutU8(applied ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(files.size()));
  for (const auto& f : files) {
    w.PutU8(f.found ? 1 : 0);
    w.PutBytes(f.vo);
  }
  w.PutU64(ctr);
  w.PutU32(creator);
  return w.Take();
}

Result<util::Tainted<ServerReply>> ServerReply::Deserialize(const Bytes& data) {
  util::Reader r(data);
  ServerReply reply;
  TCVS_ASSIGN_OR_RETURN(uint8_t applied, r.GetU8());
  reply.applied = (applied != 0);
  TCVS_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  if (n > 1u << 16) return Status::InvalidArgument("too many per-file replies");
  for (uint32_t i = 0; i < n; ++i) {
    PerFile f;
    TCVS_ASSIGN_OR_RETURN(uint8_t found, r.GetU8());
    f.found = (found != 0);
    TCVS_ASSIGN_OR_RETURN(f.vo, r.GetBytes());
    reply.files.push_back(std::move(f));
  }
  TCVS_ASSIGN_OR_RETURN(reply.ctr, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(reply.creator, r.GetU32());
  return util::Tainted<ServerReply>(std::move(reply));
}

Bytes ListReply::Serialize() const {
  util::Writer w;
  w.PutBytes(range_vo);
  w.PutU64(ctr);
  w.PutU32(creator);
  return w.Take();
}

Result<util::Tainted<ListReply>> ListReply::Deserialize(const Bytes& data) {
  util::Reader r(data);
  ListReply reply;
  TCVS_ASSIGN_OR_RETURN(reply.range_vo, r.GetBytes());
  TCVS_ASSIGN_OR_RETURN(reply.ctr, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(reply.creator, r.GetU32());
  return util::Tainted<ListReply>(std::move(reply));
}

Bytes LogEntry(uint64_t ctr, const crypto::Digest& root) {
  util::Writer w;
  w.PutU64(ctr);
  w.PutRaw(root);
  return w.Take();
}

Bytes LogCheckpointReply::Serialize() const {
  util::Writer w;
  w.PutU64(size);
  w.PutRaw(root);
  w.PutU32(static_cast<uint32_t>(consistency.size()));
  for (const auto& d : consistency) w.PutRaw(d);
  return w.Take();
}

Result<util::Tainted<LogCheckpointReply>> LogCheckpointReply::Deserialize(
    const Bytes& data) {
  util::Reader r(data);
  LogCheckpointReply reply;
  TCVS_ASSIGN_OR_RETURN(reply.size, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(reply.root, r.GetRaw(crypto::kDigestSize));
  TCVS_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  if (n > 1u << 12) return Status::InvalidArgument("oversized proof");
  for (uint32_t i = 0; i < n; ++i) {
    TCVS_ASSIGN_OR_RETURN(crypto::Digest d, r.GetRaw(crypto::kDigestSize));
    reply.consistency.push_back(std::move(d));
  }
  return util::Tainted<LogCheckpointReply>(std::move(reply));
}

Bytes ClientState::Serialize() const {
  util::Writer w;
  w.PutString("tcvs-client-state-v2");
  w.PutU32(user_id);
  w.PutBytes(sigma);
  w.PutBytes(last);
  w.PutU64(gctr);
  w.PutU64(lctr);
  w.PutU64(log_size);
  w.PutBytes(log_root);
  return w.Take();
}

Result<ClientState> ClientState::Deserialize(const Bytes& data) {
  util::Reader r(data);
  TCVS_ASSIGN_OR_RETURN(std::string magic, r.GetString());
  if (magic != "tcvs-client-state-v2") {
    return Status::InvalidArgument("bad client state magic");
  }
  ClientState s;
  TCVS_ASSIGN_OR_RETURN(s.user_id, r.GetU32());
  TCVS_ASSIGN_OR_RETURN(s.sigma, r.GetBytes());
  TCVS_ASSIGN_OR_RETURN(s.last, r.GetBytes());
  TCVS_ASSIGN_OR_RETURN(s.gctr, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(s.lctr, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(s.log_size, r.GetU64());
  TCVS_ASSIGN_OR_RETURN(s.log_root, r.GetBytes());
  if (s.sigma.size() != crypto::kDigestSize ||
      s.last.size() != crypto::kDigestSize) {
    return Status::InvalidArgument("bad register size in client state");
  }
  return s;
}

// ---------------------------------------------------------------------------
// UntrustedServer
// ---------------------------------------------------------------------------

UntrustedServer::UntrustedServer(mtree::TreeParams params)
    : params_(params), tree_(params) {}

UntrustedServer::UntrustedServer(mtree::MerkleBTree tree, uint64_t ctr,
                                 uint32_t creator,
                                 std::vector<crypto::Digest> log_leaves)
    : params_(tree.params()), tree_(std::move(tree)), ctr_(ctr),
      creator_(creator),
      log_(crypto::TransparencyLog::FromLeafHashes(std::move(log_leaves))) {}

void UntrustedServer::AppendLogEntry() {
  log_.Append(LogEntry(ctr_, tree_.root_digest()));
}

Result<util::Tainted<LogCheckpointReply>> UntrustedServer::LogCheckpoint(
    uint64_t old_size) {
  LogCheckpointReply reply;
  reply.size = log_.size();
  reply.root = log_.Root();
  if (old_size > log_.size()) {
    // The honest server can never be behind a client checkpoint; answer with
    // the (smaller) truth and let the client detect the rollback.
    return util::Tainted<LogCheckpointReply>(std::move(reply));
  }
  TCVS_ASSIGN_OR_RETURN(reply.consistency,
                        log_.ConsistencyProof(old_size, log_.size()));
  return util::Tainted<LogCheckpointReply>(std::move(reply));
}

Result<util::Tainted<ServerReply>> UntrustedServer::Transact(
    uint32_t user, const std::vector<FileOp>& ops) {
  if (ops.empty()) return Status::InvalidArgument("empty transaction");
  TCVS_SPAN("cvs.server.transact");

  // Phase 1 — decide: every commit's base revision must match the revision
  // the file will have when that sub-op runs (earlier sub-ops of the same
  // transaction included). All-or-nothing.
  bool applies = true;
  {
    std::map<std::string, uint64_t> scratch_rev;
    auto current_rev = [&](const std::string& path) -> uint64_t {
      auto it = scratch_rev.find(path);
      if (it != scratch_rev.end()) return it->second;
      auto value = tree_.Get(util::ToBytes(path));
      if (!value.has_value()) return 0;
      auto rec = FileRecord::Deserialize(*value);
      return rec.ok() ? rec->revision : 0;
    };
    for (const auto& op : ops) {
      switch (op.kind) {
        case FileOp::Kind::kCommit:
          if (op.base_revision != current_rev(op.path)) applies = false;
          scratch_rev[op.path] = op.base_revision + 1;
          break;
        case FileOp::Kind::kRemove:
          scratch_rev[op.path] = 0;
          break;
        case FileOp::Kind::kCheckout:
          break;
      }
      if (!applies) break;
    }
  }

  // Phase 2 — execute sequentially, emitting the pre-sub-op proof for each
  // file. Mutations run only when the transaction applies.
  ServerReply reply;
  reply.applied = applies;
  reply.ctr = ctr_;
  reply.creator = creator_;
  for (const auto& op : ops) {
    Bytes key = util::ToBytes(op.path);
    ServerReply::PerFile f;
    f.found = tree_.Get(key).has_value();
    switch (op.kind) {
      case FileOp::Kind::kCheckout:
        f.vo = tree_.ProvePoint(key).Serialize();
        break;
      case FileOp::Kind::kCommit:
        if (applies) {
          f.vo = tree_.Upsert(key, FileRecord{op.base_revision + 1, op.content}
                                       .Serialize())
                     .Serialize();
        } else {
          f.vo = tree_.ProvePoint(key).Serialize();
        }
        break;
      case FileOp::Kind::kRemove:
        if (applies) {
          bool found = false;
          f.vo = tree_.Delete(key, &found).Serialize();
          f.found = found;
        } else {
          f.vo = tree_.ProvePoint(key).Serialize();
        }
        break;
    }
    reply.files.push_back(std::move(f));
  }
  static util::Counter* const transactions =
      util::MetricsRegistry::Instance().GetCounter(
          "cvs.server.transactions_total");
  static util::LatencyHistogram* const vo_bytes =
      util::MetricsRegistry::Instance().GetLatency("cvs.server.vo_bytes");
  transactions->Increment();
  uint64_t vo_total = 0;
  for (const auto& f : reply.files) vo_total += f.vo.size();
  vo_bytes->Record(vo_total);

  // One transaction, one counter tick; the requesting user is the new
  // state's creator. The post-state lands in the transparency log.
  ctr_ += 1;
  creator_ = user;
  AppendLogEntry();
  // Even the in-process server's output is quarantined: it is the untrusted
  // vendor, and only the client's chain walk may unwrap its replies.
  return util::Tainted<ServerReply>(std::move(reply));
}

namespace {

// Upper bound of the prefix key-space. File paths are byte strings without
// 0xFF bytes (documented constraint), so prefix ∥ 0xFF…0xFF dominates every
// extension of the prefix.
Bytes PrefixUpperBound(const std::string& prefix) {
  Bytes hi = util::ToBytes(prefix);
  hi.insert(hi.end(), 16, 0xFF);
  return hi;
}

}  // namespace

Result<util::Tainted<ListReply>> UntrustedServer::List(
    uint32_t user, const std::string& prefix) {
  TCVS_SPAN("cvs.server.list");
  ListReply reply;
  reply.range_vo =
      tree_.ProveRange(util::ToBytes(prefix), PrefixUpperBound(prefix))
          .Serialize();
  static util::LatencyHistogram* const vo_bytes =
      util::MetricsRegistry::Instance().GetLatency("cvs.server.range_vo_bytes");
  vo_bytes->Record(reply.range_vo.size());
  reply.ctr = ctr_;
  reply.creator = creator_;
  // A listing is a read transaction: the counter advances, the state stays.
  ctr_ += 1;
  creator_ = user;
  AppendLogEntry();
  return util::Tainted<ListReply>(std::move(reply));
}

// ---------------------------------------------------------------------------
// VerifyingClient
// ---------------------------------------------------------------------------

VerifyingClient::VerifyingClient(uint32_t user_id, ServerApi* server)
    : user_id_(user_id), server_(server), params_(server->tree_params()) {
  sigma_.assign(crypto::kDigestSize, 0);
  last_ = core::InitialFingerprint(/*tagged=*/true);
  log_root_ = crypto::Sha256::Hash("");
}

VerifyingClient::VerifyingClient(ClientState state, ServerApi* server)
    : user_id_(state.user_id),
      server_(server),
      sigma_(std::move(state.sigma)),
      last_(std::move(state.last)),
      gctr_(state.gctr),
      lctr_(state.lctr),
      log_size_(state.log_size),
      log_root_(std::move(state.log_root)),
      params_(server->tree_params()) {}

ClientState VerifyingClient::state() const {
  return ClientState{user_id_, sigma_, last_, gctr_, lctr_, log_size_,
                     log_root_};
}

Status VerifyingClient::AuditLog() {
  TCVS_ASSIGN_OR_RETURN(util::Tainted<LogCheckpointReply> quarantined,
                        server_->LogCheckpoint(log_size_));
  // Borrow for verification only; the checkpoint registers advance from the
  // endorsed copy below.
  const LogCheckpointReply& reply = quarantined.untrusted();
  if (reply.size < log_size_) {
    return Deviation(
        util::AuditEventKind::kDeviationDetected, user_id_, reply.size, gctr_,
        "server transparency log shrank from " + std::to_string(log_size_) +
            " to " + std::to_string(reply.size) + ": history rolled back");
  }
  // Before the first audit the local checkpoint is the empty log.
  crypto::Digest old_root =
      log_size_ == 0 ? crypto::Sha256::Hash("") : log_root_;
  Status st = crypto::TransparencyLog::VerifyConsistency(
      log_size_, reply.size, old_root, reply.root, reply.consistency);
  if (!st.ok()) {
    return Deviation(
        util::AuditEventKind::kDeviationDetected, user_id_, reply.size, gctr_,
        "server transparency log is not an extension of the checkpoint (" +
            st.ToString() + "): history rewritten");
  }
  const LogCheckpointReply verified =
      TCVS_ENDORSE(std::move(quarantined), crypto::ConsistencyVerified{});
  AdvanceLogCheckpoint(verified.size, verified.root);
  return Status::OK();
}

void VerifyingClient::AdvanceLogCheckpoint(uint64_t size,
                                           const crypto::Digest& root) {
  log_size_ = size;
  log_root_ = root;
}

Result<ServerReply> VerifyingClient::Execute(
    const std::vector<FileOp>& ops,
    std::vector<std::optional<FileRecord>>* pre_records) {
  TCVS_ASSIGN_OR_RETURN(util::Tainted<ServerReply> quarantined,
                        server_->Transact(user_id_, ops));
  TCVS_SPAN("cvs.client.verify_transact");
  // Borrow for the chain walk; every use below is a check. The borrow dies
  // at the TCVS_ENDORSE, and the register fold reads the endorsed copy.
  const ServerReply& reply = quarantined.untrusted();
  static util::Counter* const transactions =
      util::MetricsRegistry::Instance().GetCounter(
          "cvs.client.transactions_total");
  static util::LatencyHistogram* const vo_bytes =
      util::MetricsRegistry::Instance().GetLatency("cvs.client.vo_bytes");
  transactions->Increment();
  uint64_t vo_total = 0;
  for (const auto& f : reply.files) vo_total += f.vo.size();
  vo_bytes->Record(vo_total);
  if (reply.files.size() != ops.size()) {
    return Deviation(util::AuditEventKind::kDeviationDetected, user_id_,
                     reply.ctr, gctr_,
                     "server answered a different transaction");
  }
  if (reply.ctr < gctr_) {
    return Deviation(
        util::AuditEventKind::kCounterRegression, user_id_, reply.ctr, gctr_,
        "server presented counter " + std::to_string(reply.ctr) +
            " older than one already seen (" + std::to_string(gctr_) + ")");
  }

  // Walk the VO chain: each sub-op's proof must be rooted at the state the
  // previous sub-ops produced, and each mutation is replayed locally. The
  // server's apply/reject decision is recomputed from authenticated
  // revisions and must match.
  pre_records->clear();
  std::optional<crypto::Digest> chain_root;
  crypto::Digest pre_root;  // Root before the whole transaction.
  bool expected_applies = true;
  std::map<std::string, uint64_t> scratch_rev;

  for (size_t i = 0; i < ops.size(); ++i) {
    const FileOp& op = ops[i];
    const ServerReply::PerFile& f = reply.files[i];
    Bytes key = util::ToBytes(op.path);

    TCVS_ASSIGN_OR_RETURN(util::Tainted<mtree::PointVO> vo,
                          mtree::PointVO::Deserialize(f.vo));
    TCVS_ASSIGN_OR_RETURN(crypto::Digest root,
                          mtree::VerifiedRootDigest(vo, &vo_cache_));
    if (!chain_root.has_value()) {
      pre_root = root;
    } else if (root != *chain_root) {
      util::AuditEvent event(util::AuditEventKind::kVoMismatch);
      event.user = user_id_;
      event.ctr = reply.ctr;
      event.gctr = gctr_;
      event.expected_digest = *chain_root;
      event.actual_digest = root;
      event.detail =
          "verification-object chain broken at sub-op " + std::to_string(i);
      util::AuditLog::Instance().Emit(std::move(event));
      return Status::DeviationDetected(
          "verification-object chain broken at sub-op " + std::to_string(i));
    }

    TCVS_ASSIGN_OR_RETURN(std::optional<Bytes> value,
                          mtree::VerifyPointRead(root, params_, key, vo,
                                                 &vo_cache_));
    std::optional<FileRecord> record;
    if (value.has_value()) {
      auto rec = FileRecord::Deserialize(*value);
      if (!rec.ok()) {
        return Deviation(util::AuditEventKind::kVoMismatch, user_id_, reply.ctr,
                         gctr_, "server stored a malformed file record");
      }
      record = std::move(rec).ValueOrDie();
    }
    pre_records->push_back(record);

    // Recompute the decision exactly as an honest server would.
    uint64_t current = scratch_rev.count(op.path)
                           ? scratch_rev[op.path]
                           : (record.has_value() ? record->revision : 0);
    crypto::Digest next_root = root;
    switch (op.kind) {
      case FileOp::Kind::kCheckout:
        if (value.has_value() != f.found) {
          return Deviation(util::AuditEventKind::kVoMismatch, user_id_,
                           reply.ctr, gctr_,
                           "server's existence claim contradicts the proof");
        }
        break;
      case FileOp::Kind::kCommit: {
        if (op.base_revision != current) expected_applies = false;
        scratch_rev[op.path] = op.base_revision + 1;
        if (reply.applied) {
          Bytes new_value =
              FileRecord{op.base_revision + 1, op.content}.Serialize();
          TCVS_ASSIGN_OR_RETURN(
              next_root, mtree::VerifyAndApplyUpsert(root, params_, key,
                                                     new_value, vo, &vo_cache_));
        }
        break;
      }
      case FileOp::Kind::kRemove: {
        scratch_rev[op.path] = 0;
        if (reply.applied && record.has_value()) {
          TCVS_ASSIGN_OR_RETURN(
              next_root, mtree::VerifyAndApplyDelete(root, params_, key, vo,
                                                     &vo_cache_));
        }
        if (reply.applied && record.has_value() != f.found) {
          return Deviation(util::AuditEventKind::kVoMismatch, user_id_,
                           reply.ctr, gctr_,
                           "server's removal claim contradicts the proof");
        }
        break;
      }
    }
    chain_root = next_root;
  }

  if (expected_applies != reply.applied) {
    return Deviation(
        util::AuditEventKind::kVoMismatch, user_id_, reply.ctr, gctr_,
        "server mis-decided the transaction (authenticated revisions say "
        "applied should be " +
            std::string(expected_applies ? "true" : "false") + ")");
  }

  // Every check passed: endorse, then fold the transaction into the
  // Protocol II registers from the endorsed copy only. (`reply` dangles past
  // this point — do not touch it.)
  const ServerReply verified =
      TCVS_ENDORSE(std::move(quarantined), ChainVerified{});
  FoldTransaction(pre_root, *chain_root, verified.ctr, verified.creator);
  return verified;
}

void VerifyingClient::FoldTransaction(const crypto::Digest& pre_root,
                                      const crypto::Digest& post_root,
                                      uint64_t ctr, uint32_t creator) {
  sigma_ = XorBytes(sigma_, StateFingerprint(pre_root, ctr, creator));
  const crypto::Digest post_fp = StateFingerprint(post_root, ctr + 1, user_id_);
  sigma_ = XorBytes(sigma_, post_fp);
  last_ = post_fp;
  gctr_ = ctr + 1;
  ++lctr_;
}

Result<FileRecord> VerifyingClient::Checkout(const std::string& path) {
  std::vector<std::optional<FileRecord>> records;
  TCVS_RETURN_NOT_OK(
      Execute({FileOp{FileOp::Kind::kCheckout, path, "", 0}}, &records)
          .status());
  if (!records[0].has_value()) {
    return Status::NotFound("no such file (authenticated): " + path);
  }
  return *records[0];
}

Result<std::vector<std::optional<FileRecord>>> VerifyingClient::CheckoutMany(
    const std::vector<std::string>& paths) {
  std::vector<FileOp> ops;
  for (const auto& p : paths) ops.push_back({FileOp::Kind::kCheckout, p, "", 0});
  std::vector<std::optional<FileRecord>> records;
  TCVS_RETURN_NOT_OK(Execute(ops, &records).status());
  return records;
}

Result<uint64_t> VerifyingClient::Commit(const std::string& path,
                                         std::string content,
                                         uint64_t base_revision) {
  std::vector<std::optional<FileRecord>> records;
  TCVS_ASSIGN_OR_RETURN(
      ServerReply reply,
      Execute({FileOp{FileOp::Kind::kCommit, path, std::move(content),
                      base_revision}},
              &records));
  if (!reply.applied) {
    uint64_t cur = records[0].has_value() ? records[0]->revision : 0;
    if (base_revision == 0 && cur != 0) {
      return Status::AlreadyExists("file already exists at revision " +
                                   std::to_string(cur) + ": " + path);
    }
    return Status::FailedPrecondition(
        "commit against revision " + std::to_string(base_revision) +
        " but current is " + std::to_string(cur) + " (update first)");
  }
  return base_revision + 1;
}

Result<std::vector<uint64_t>> VerifyingClient::CommitMany(
    const std::vector<FileOp>& commits) {
  for (const auto& op : commits) {
    if (op.kind != FileOp::Kind::kCommit) {
      return Status::InvalidArgument("CommitMany accepts only commits");
    }
  }
  std::vector<std::optional<FileRecord>> records;
  TCVS_ASSIGN_OR_RETURN(ServerReply reply, Execute(commits, &records));
  if (!reply.applied) {
    return Status::FailedPrecondition(
        "atomic multi-file commit rejected: at least one base revision is "
        "stale (update first)");
  }
  std::vector<uint64_t> revisions;
  for (const auto& op : commits) revisions.push_back(op.base_revision + 1);
  return revisions;
}

Result<std::vector<std::pair<std::string, uint64_t>>> VerifyingClient::ListDir(
    const std::string& prefix) {
  TCVS_ASSIGN_OR_RETURN(util::Tainted<ListReply> quarantined,
                        server_->List(user_id_, prefix));
  TCVS_SPAN("cvs.client.verify_list");
  const ListReply& reply = quarantined.untrusted();
  static util::LatencyHistogram* const vo_bytes =
      util::MetricsRegistry::Instance().GetLatency(
          "cvs.client.range_vo_bytes");
  vo_bytes->Record(reply.range_vo.size());
  if (reply.ctr < gctr_) {
    return Deviation(util::AuditEventKind::kCounterRegression, user_id_,
                     reply.ctr, gctr_, "server presented a stale counter");
  }
  TCVS_ASSIGN_OR_RETURN(util::Tainted<mtree::RangeVO> vo,
                        mtree::RangeVO::Deserialize(reply.range_vo));
  TCVS_ASSIGN_OR_RETURN(crypto::Digest root,
                        mtree::VerifiedRootDigest(vo, &vo_cache_));
  TCVS_ASSIGN_OR_RETURN(
      auto rows, mtree::VerifyRangeRead(root, params_, util::ToBytes(prefix),
                                        PrefixUpperBound(prefix), vo,
                                        &vo_cache_));
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const auto& [key, value] : rows) {
    auto rec = FileRecord::Deserialize(value);
    if (!rec.ok()) {
      return Deviation(util::AuditEventKind::kVoMismatch, user_id_, reply.ctr,
                       gctr_, "server stored a malformed file record");
    }
    out.emplace_back(util::ToString(key), rec->revision);
  }
  // Fold the read transaction (same root before and after, counter +1) from
  // the endorsed copy; the range proof was the endorsement.
  const ListReply verified =
      TCVS_ENDORSE(std::move(quarantined), mtree::VoVerified{});
  FoldTransaction(root, root, verified.ctr, verified.creator);
  return out;
}

Status VerifyingClient::Remove(const std::string& path) {
  std::vector<std::optional<FileRecord>> records;
  TCVS_RETURN_NOT_OK(
      Execute({FileOp{FileOp::Kind::kRemove, path, "", 0}}, &records).status());
  if (!records[0].has_value()) {
    return Status::NotFound("no such file (authenticated): " + path);
  }
  return Status::OK();
}

Status VerifyingClient::SyncUp(const std::vector<VerifyingClient*>& clients) {
  std::vector<ClientState> states;
  for (const VerifyingClient* c : clients) states.push_back(c->state());
  return SyncCheck(states);
}

Status VerifyingClient::SyncCheck(const std::vector<ClientState>& states) {
  if (states.empty()) {
    return Status::InvalidArgument("sync-up needs at least one client state");
  }
  Bytes x(crypto::kDigestSize, 0);
  uint64_t lctr_sum = 0;
  uint64_t max_gctr = 0;
  for (const auto& s : states) {
    if (s.sigma.size() != crypto::kDigestSize ||
        s.last.size() != crypto::kDigestSize) {
      return Status::InvalidArgument("malformed client state");
    }
    x = XorBytes(x, s.sigma);
    lctr_sum += s.lctr;
    max_gctr = std::max(max_gctr, s.gctr);
  }
  const Bytes f0 = core::InitialFingerprint(/*tagged=*/true);
  for (const auto& s : states) {
    if (XorBytes(f0, s.last) == x) {
      util::AuditEvent pass(util::AuditEventKind::kSyncUpPass);
      pass.user = s.user_id;
      pass.ctr = max_gctr;
      pass.gctr = max_gctr;
      pass.lctr_sum = lctr_sum;
      util::AuditLog::Instance().Emit(std::move(pass));
      return Status::OK();
    }
  }
  // No participant's final fingerprint explains the folded transitions:
  // record both the sync failure and the fork evidence. The digests name
  // the two sides of the divergence — what the transitions fold to versus
  // what the highest-counter participant last observed.
  const ClientState* latest = &states.front();
  for (const auto& s : states) {
    if (s.gctr >= latest->gctr) latest = &s;
  }
  util::AuditEvent fail(util::AuditEventKind::kSyncUpFail);
  fail.user = latest->user_id;
  fail.ctr = max_gctr;
  fail.gctr = max_gctr;
  fail.lctr_sum = lctr_sum;
  fail.detail = "sync-up over " + std::to_string(states.size()) +
                " clients failed to close the XOR telescope";
  util::AuditLog::Instance().Emit(std::move(fail));
  util::AuditEvent fork(util::AuditEventKind::kForkDetected);
  fork.user = latest->user_id;
  fork.ctr = max_gctr;
  fork.gctr = max_gctr;
  fork.lctr_sum = lctr_sum;
  fork.expected_digest = XorBytes(f0, latest->last);
  fork.actual_digest = x;
  fork.detail = "fork/partition detected at sync (gctr " +
                std::to_string(max_gctr) + ")";
  util::AuditLog::Instance().Emit(std::move(fork));
  return Status::DeviationDetected(
      "sync-up failed: the clients' observed transitions do not form a "
      "single serial history — the server forked or replayed state");
}

}  // namespace cvs
}  // namespace tcvs
