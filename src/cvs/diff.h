#pragma once

#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace tcvs {
namespace cvs {

/// \brief One contiguous edit: at line `old_pos` of the old file (0-based),
/// `removed` lines are replaced by `added` lines. Pure insertions have empty
/// `removed`; pure deletions empty `added`.
struct Hunk {
  size_t old_pos = 0;
  std::vector<std::string> removed;
  std::vector<std::string> added;

  bool operator==(const Hunk&) const = default;
};

/// \brief A line-based patch: an ordered list of non-overlapping hunks, as
/// produced by Myers diff. Applying it to the old file yields the new file.
struct Patch {
  std::vector<Hunk> hunks;

  bool empty() const { return hunks.empty(); }
  /// Total lines added/removed (the "size" of the change).
  size_t lines_added() const;
  size_t lines_removed() const;

  Bytes Serialize() const;
  // taint-exempt: local-origin — patches are computed and parsed by the same
  // process; server-sent file content arrives quarantined via QueryResponse.
  static Result<Patch> Deserialize(const Bytes& data);

  /// Unified-diff-style rendering for humans.
  std::string ToString() const;

  bool operator==(const Patch&) const = default;
};

/// \brief Splits text into lines; a trailing newline does not create an
/// empty final line. JoinLines is its inverse for newline-terminated text.
std::vector<std::string> SplitLines(std::string_view text);
std::string JoinLines(const std::vector<std::string>& lines);

/// \brief Myers O((N+M)·D) shortest-edit-script diff between line vectors.
Patch ComputeDiff(const std::vector<std::string>& old_lines,
                  const std::vector<std::string>& new_lines);

/// Convenience over whole file texts.
Patch ComputeDiffText(std::string_view old_text, std::string_view new_text);

/// \brief Applies `patch` to `old_lines`.
/// \return Corruption when the patch context does not match (the patch was
/// made against a different base).
Result<std::vector<std::string>> ApplyPatch(
    const std::vector<std::string>& old_lines, const Patch& patch);

Result<std::string> ApplyPatchText(std::string_view old_text, const Patch& patch);

/// \brief Result of a three-way merge.
struct MergeResult {
  std::vector<std::string> lines;
  /// True when conflicting edits were bracketed with conflict markers.
  bool had_conflicts = false;
};

/// \brief diff3-style merge of two descendants of `base`, the operation a
/// CVS server performs when a commit races an update ("occasionally changing
/// some common header files", paper §3.1). Non-overlapping edits combine;
/// overlapping different edits produce CVS-style <<<<<<</=======/>>>>>>>
/// conflict blocks.
MergeResult ThreeWayMerge(const std::vector<std::string>& base,
                          const std::vector<std::string>& ours,
                          const std::vector<std::string>& theirs);

}  // namespace cvs
}  // namespace tcvs
