#include "cvs/cache.h"

#include "util/serde.h"

namespace tcvs {
namespace cvs {

namespace {
constexpr char kCacheMagic[] = "tcvs-cache-v1";
}  // namespace

void LocalCache::Put(const std::string& path, FileRecord record) {
  files_[path] = std::move(record);
}

void LocalCache::Erase(const std::string& path) { files_.erase(path); }

const FileRecord* LocalCache::Find(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, uint64_t>> LocalCache::List(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, uint64_t>> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second.revision);
  }
  return out;
}

void LocalCache::StoreVoEntries(const mtree::VoCache& cache) {
  vo_entries_ = cache.Export();
}

void LocalCache::LoadVoEntriesInto(mtree::VoCache* cache) const {
  for (const auto& [key, digest] : vo_entries_) {
    cache->Restore(key, digest);
  }
}

Bytes LocalCache::Serialize() const {
  util::Writer w;
  w.PutString(kCacheMagic);
  w.PutU64(files_.size());
  for (const auto& [path, record] : files_) {
    w.PutString(path);
    w.PutU64(record.revision);
    w.PutString(record.content);
  }
  // VO subtree-cache sidecar, appended after the files so caches written by
  // older builds (which stop reading here) still parse.
  w.PutU64(vo_entries_.size());
  for (const auto& [key, digest] : vo_entries_) {
    w.PutBytes(key);
    w.PutBytes(digest);
  }
  return w.Take();
}

Result<LocalCache> LocalCache::Deserialize(const Bytes& data) {
  util::Reader r(data);
  TCVS_ASSIGN_OR_RETURN(std::string magic, r.GetString());
  if (magic != kCacheMagic) {
    return Status::Corruption("bad local-cache magic");
  }
  TCVS_ASSIGN_OR_RETURN(uint64_t n, r.GetU64());
  LocalCache cache;
  for (uint64_t i = 0; i < n; ++i) {
    TCVS_ASSIGN_OR_RETURN(std::string path, r.GetString());
    FileRecord record;
    TCVS_ASSIGN_OR_RETURN(record.revision, r.GetU64());
    TCVS_ASSIGN_OR_RETURN(record.content, r.GetString());
    cache.files_[std::move(path)] = std::move(record);
  }
  // Optional VO sidecar (absent in files written before it existed).
  if (!r.AtEnd()) {
    TCVS_ASSIGN_OR_RETURN(uint64_t vn, r.GetU64());
    for (uint64_t i = 0; i < vn; ++i) {
      std::pair<crypto::Digest, crypto::Digest> entry;
      TCVS_ASSIGN_OR_RETURN(entry.first, r.GetBytes());
      TCVS_ASSIGN_OR_RETURN(entry.second, r.GetBytes());
      cache.vo_entries_.push_back(std::move(entry));
    }
  }
  return cache;
}

}  // namespace cvs
}  // namespace tcvs
