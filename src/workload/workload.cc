#include "workload/workload.h"

#include <cstdlib>
#include <map>

namespace tcvs {
namespace workload {

size_t TotalOps(const Workload& w) {
  size_t n = 0;
  for (const auto& s : w) n += s.ops.size();
  return n;
}

std::string FileName(uint32_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "src/file_%04u.c", i);
  return buf;
}

namespace {

Bytes FileKey(uint32_t i) { return util::ToBytes(FileName(i)); }

Bytes CommitPayload(util::Rng* rng, sim::AgentId user, uint32_t seqno) {
  // A small synthetic "file content": unique per (user, seq) so ground-truth
  // deviation checking can distinguish versions.
  std::string content = "// edited by user " + std::to_string(user) +
                        " change " + std::to_string(seqno) + "\n";
  uint32_t extra_lines = static_cast<uint32_t>(rng->Uniform(6));
  for (uint32_t i = 0; i < extra_lines; ++i) {
    content += "int v" + std::to_string(rng->Uniform(1000)) + " = " +
               std::to_string(rng->Uniform(1 << 20)) + ";\n";
  }
  return util::ToBytes(content);
}

}  // namespace

Workload MakeCvsWorkload(const CvsWorkloadOptions& options) {
  util::Rng rng(options.seed);
  util::ZipfGenerator zipf(options.num_files, options.zipf_theta);
  Workload w;
  for (uint32_t u = 0; u < options.num_users; ++u) {
    UserScript script;
    script.user = u + 1;  // User ids start at 1; 0 is the "initial state" id.
    sim::Round next = 1 + rng.Uniform(options.mean_think_rounds + 1);
    for (uint32_t i = 0; i < options.ops_per_user; ++i) {
      ScheduledOp op;
      op.earliest_round = next;
      uint32_t file = static_cast<uint32_t>(zipf.Next(&rng));
      op.key = FileKey(file);
      if (rng.Bernoulli(options.read_fraction)) {
        op.kind = sim::OpKind::kCheckout;
      } else {
        op.kind = sim::OpKind::kCommit;
        op.value = CommitPayload(&rng, script.user, i);
      }
      script.ops.push_back(std::move(op));
      next += 1 + rng.Uniform(2 * options.mean_think_rounds + 1);
      if (rng.Bernoulli(options.offline_probability)) {
        next += options.offline_rounds;
      }
    }
    w.push_back(std::move(script));
  }
  return w;
}

Workload MakePartitionableWorkload(const PartitionableOptions& options) {
  util::Rng rng(options.seed);
  Workload w;
  const uint32_t total_users = options.users_in_a + options.users_in_b;
  const Bytes common_header = util::ToBytes("include/Common.h");

  for (uint32_t u = 0; u < total_users; ++u) {
    UserScript script;
    script.user = u + 1;
    const bool in_a = u < options.users_in_a;

    // Common prefix: everyone works normally before the partition round.
    sim::Round next = 1 + rng.Uniform(5);
    for (uint32_t i = 0; i < options.prefix_ops_per_user; ++i) {
      ScheduledOp op;
      op.earliest_round = next;
      op.kind = sim::OpKind::kCommit;
      op.key = FileKey(u);  // Distinct files: the groups work independently.
      op.value = CommitPayload(&rng, script.user, i);
      script.ops.push_back(std::move(op));
      next += 2 + rng.Uniform(4);
    }

    if (in_a && u == 0) {
      // t1: the US programmer commits Common.h just before going offline.
      ScheduledOp t1;
      t1.earliest_round = options.partition_round;
      t1.kind = sim::OpKind::kCommit;
      t1.key = common_header;
      t1.value = util::ToBytes("#define COMMON_VERSION 2\n");
      script.ops.push_back(std::move(t1));
      // Then group A sleeps "indefinitely" (past the end of the run).
    }

    if (!in_a) {
      sim::Round b_start = options.partition_round + 10;
      if (u == options.users_in_a) {
        // t2: causally dependent read of Common.h by a user in B.
        ScheduledOp t2;
        t2.earliest_round = b_start;
        t2.kind = sim::OpKind::kCheckout;
        t2.key = common_header;
        script.ops.push_back(std::move(t2));
      }
      // B keeps working: > k further ops by one user.
      sim::Round r = b_start + 2;
      for (uint32_t i = 0; i < options.b_ops_after_dependency; ++i) {
        ScheduledOp op;
        op.earliest_round = r;
        op.kind = sim::OpKind::kCommit;
        op.key = FileKey(total_users + u);
        op.value = CommitPayload(&rng, script.user, 100 + i);
        script.ops.push_back(std::move(op));
        r += 2;
      }
    }
    w.push_back(std::move(script));
  }
  return w;
}

Workload MakeEpochWorkload(const EpochWorkloadOptions& options) {
  util::Rng rng(options.seed);
  Workload w;
  for (uint32_t u = 0; u < options.num_users; ++u) {
    UserScript script;
    script.user = u + 1;
    for (uint32_t e = 0; e < options.num_epochs; ++e) {
      const sim::Round epoch_start = sim::Round(e) * options.epoch_rounds;
      // Spread this epoch's ops inside the epoch, leaving slack at the end
      // for the request/response round trips to complete within the epoch.
      const sim::Round usable = options.epoch_rounds - 10;
      for (uint32_t i = 0; i < options.ops_per_epoch; ++i) {
        ScheduledOp op;
        op.earliest_round =
            epoch_start + 1 + (usable * i) / options.ops_per_epoch +
            rng.Uniform(3);
        uint32_t file = static_cast<uint32_t>(rng.Uniform(options.num_files));
        op.key = FileKey(file);
        if (rng.Bernoulli(options.read_fraction)) {
          op.kind = sim::OpKind::kCheckout;
        } else {
          op.kind = sim::OpKind::kCommit;
          op.value = CommitPayload(&rng, script.user, e * 100 + i);
        }
        script.ops.push_back(std::move(op));
      }
    }
    w.push_back(std::move(script));
  }
  return w;
}

Workload MakeBurstWorkload(uint32_t num_users, uint32_t burst_user_index,
                           uint32_t burst_len, uint32_t num_files,
                           uint64_t seed) {
  util::Rng rng(seed);
  Workload w;
  for (uint32_t u = 0; u < num_users; ++u) {
    UserScript script;
    script.user = u + 1;
    if (u == burst_user_index) {
      for (uint32_t i = 0; i < burst_len; ++i) {
        ScheduledOp op;
        op.earliest_round = 1;  // Back-to-back: as fast as the protocol allows.
        op.kind = sim::OpKind::kCommit;
        op.key = FileKey(static_cast<uint32_t>(rng.Uniform(num_files)));
        op.value = CommitPayload(&rng, script.user, i);
        script.ops.push_back(std::move(op));
      }
    }
    w.push_back(std::move(script));
  }
  return w;
}

std::string WorkloadToTrace(const Workload& workload) {
  std::string out;
  out += "# trusted-cvs workload trace v1: user,round,kind,key_hex,value_hex\n";
  for (const auto& script : workload) {
    for (const auto& op : script.ops) {
      out += std::to_string(script.user) + "," +
             std::to_string(op.earliest_round) + "," +
             std::to_string(static_cast<int>(op.kind)) + "," +
             util::HexEncode(op.key) + "," + util::HexEncode(op.value) + "\n";
    }
  }
  return out;
}

Result<Workload> WorkloadFromTrace(std::string_view trace) {
  std::map<sim::AgentId, UserScript> scripts;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= trace.size()) {
    size_t end = trace.find('\n', start);
    if (end == std::string_view::npos) end = trace.size();
    std::string_view line = trace.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') {
      if (end == trace.size()) break;
      continue;
    }

    std::vector<std::string> fields;
    size_t fstart = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ',') {
        fields.emplace_back(line.substr(fstart, i - fstart));
        fstart = i + 1;
      }
    }
    if (fields.size() != 5) {
      return Status::InvalidArgument("trace line " + std::to_string(line_no) +
                                     ": expected 5 fields");
    }
    char* endp = nullptr;
    ScheduledOp op;
    sim::AgentId user =
        static_cast<sim::AgentId>(std::strtoul(fields[0].c_str(), &endp, 10));
    if (*endp != '\0' || user == 0) {
      return Status::InvalidArgument("trace line " + std::to_string(line_no) +
                                     ": bad user id");
    }
    op.earliest_round = std::strtoull(fields[1].c_str(), &endp, 10);
    if (*endp != '\0') {
      return Status::InvalidArgument("trace line " + std::to_string(line_no) +
                                     ": bad round");
    }
    long kind = std::strtol(fields[2].c_str(), &endp, 10);
    if (*endp != '\0' || kind < 0 || kind > 2) {
      return Status::InvalidArgument("trace line " + std::to_string(line_no) +
                                     ": bad op kind");
    }
    op.kind = static_cast<sim::OpKind>(kind);
    TCVS_ASSIGN_OR_RETURN(op.key, util::HexDecode(fields[3]));
    TCVS_ASSIGN_OR_RETURN(op.value, util::HexDecode(fields[4]));
    auto& script = scripts[user];
    script.user = user;
    script.ops.push_back(std::move(op));
    if (end == trace.size()) break;
  }
  Workload out;
  for (auto& [user, script] : scripts) out.push_back(std::move(script));
  return out;
}

}  // namespace workload
}  // namespace tcvs
