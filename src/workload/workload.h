#pragma once

#include <string>
#include <vector>

#include "sim/trace.h"
#include "sim/types.h"
#include "util/random.h"

namespace tcvs {
namespace workload {

/// \brief One data operation a user will issue, not before `earliest_round`.
/// Operations of one user execute strictly in script order; a later
/// `earliest_round` models the user going offline in between.
struct ScheduledOp {
  sim::Round earliest_round = 0;
  sim::OpKind kind = sim::OpKind::kCommit;
  Bytes key;
  Bytes value;
};

/// \brief A per-user operation script. The whole workload is one script per
/// user (paper §2.1: a workload is the sequence of operations on the data;
/// the per-user scripts are its user projections plus timing).
struct UserScript {
  sim::AgentId user = 0;
  std::vector<ScheduledOp> ops;
};

using Workload = std::vector<UserScript>;

/// Total operations across all users.
size_t TotalOps(const Workload& w);

/// \brief Parameters for generator functions.
struct CvsWorkloadOptions {
  uint32_t num_users = 4;
  uint32_t ops_per_user = 20;
  uint32_t num_files = 16;
  /// Zipf skew of file popularity (0 = uniform).
  double zipf_theta = 0.8;
  /// Fraction of checkouts (reads); the rest are commits.
  double read_fraction = 0.5;
  /// Mean idle rounds between a user's consecutive ops.
  uint32_t mean_think_rounds = 4;
  /// Probability a user takes a long offline break after an op.
  double offline_probability = 0.05;
  uint32_t offline_rounds = 200;
  uint64_t seed = 1;
};

/// \brief Generates a CVS-style workload: skewed file popularity, bursts of
/// activity separated by think time, occasional long offline periods
/// (paper §2.2.2: "some users sleep indefinitely").
Workload MakeCvsWorkload(const CvsWorkloadOptions& options);

/// \brief Parameters for the partitionable workload of paper §3.1.
struct PartitionableOptions {
  uint32_t users_in_a = 2;
  uint32_t users_in_b = 2;
  /// Ops in the common prefix (all users interleaved).
  uint32_t prefix_ops_per_user = 3;
  /// Round m at which group A goes silent except its own window.
  sim::Round partition_round = 100;
  /// Ops group B performs after the causal dependency (must exceed k to
  /// defeat k-bounded detection without external communication).
  uint32_t b_ops_after_dependency = 12;
  uint64_t seed = 2;
};

/// \brief Generates the unboundedly-partitionable workload of §3.1: a common
/// prefix; then a transaction t1 by a user in A (the US programmer's commit
/// to Common.h); A goes offline; users in B issue a causally dependent t2
/// (a checkout of Common.h) and then many more operations while A sleeps.
Workload MakePartitionableWorkload(const PartitionableOptions& options);

/// \brief Parameters for epoch-compliant workloads (Protocol III, §4.4).
struct EpochWorkloadOptions {
  uint32_t num_users = 4;
  uint32_t num_epochs = 6;
  sim::Round epoch_rounds = 50;
  /// Ops per user per epoch; must be ≥ 2 for the protocol's guarantee.
  uint32_t ops_per_epoch = 2;
  uint32_t num_files = 8;
  double read_fraction = 0.4;
  uint64_t seed = 3;
};

/// \brief Generates a workload where every user performs at least
/// `ops_per_epoch` (≥2) operations in every epoch — the §4.4 restriction
/// under which Protocol III guarantees detection within two epochs.
Workload MakeEpochWorkload(const EpochWorkloadOptions& options);

/// \brief A burst workload: one user issues `burst_len` back-to-back ops
/// while others idle — the §2.2.3 scenario on which the token-passing
/// baseline destroys workload preservation.
Workload MakeBurstWorkload(uint32_t num_users, uint32_t burst_user_index,
                           uint32_t burst_len, uint32_t num_files, uint64_t seed);

/// \brief File path used for file index `i` in generated workloads.
std::string FileName(uint32_t i);

/// \brief Renders a workload as a portable text trace, one line per
/// operation:
///
///   user,earliest_round,kind,key_hex,value_hex
///
/// Traces make experiments shareable and replayable outside the generator's
/// seed (e.g. hand-edited corner-case schedules).
std::string WorkloadToTrace(const Workload& workload);

/// \brief Parses a trace produced by WorkloadToTrace (blank lines and
/// '#'-comments are allowed). Operations are grouped by user in file order.
Result<Workload> WorkloadFromTrace(std::string_view trace);

}  // namespace workload
}  // namespace tcvs
